"""The flight recorder: a bounded ring buffer of recent telemetry.

Spans and metrics answer "what happened over the whole run"; the
flight recorder answers the harder operational question — *"what were
the last things this service did before it misbehaved?"*.  It is an
always-on, fixed-capacity ring of small records (span completions,
resilience events, reload attempts, fsck findings).  Appending is a
deque rotation under a lock — cheap enough to leave on in production —
and the buffer is only ever materialized when something goes wrong:

* a query lands in the error tier of the degradation chain,
* a deadline expires and a partial answer is returned,
* the circuit breaker opens (or skips the process tier while open),
* the operator sends ``SIGUSR2`` to a running ``repro batch``.

On any of those, :meth:`FlightRecorder.dump` writes the last N records
as one ``repro.flight/v1`` JSON document into the trace directory, so
a post-mortem starts from the exact event sequence that preceded the
failure instead of from aggregate counters.  :data:`NULL_RECORDER`
preserves the repo-wide null-object default: code paths test
``recorder.enabled`` and pay one attribute load when recording is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.exceptions import ReproError

#: Schema identifier stamped into every dump.
FLIGHT_SCHEMA = "repro.flight/v1"

#: Default ring capacity — small enough that a dump is readable,
#: large enough to span a whole degraded chunk's worth of events.
DEFAULT_CAPACITY = 512


class FlightRecorderError(ReproError):
    """A flight-recorder dump could not be written or parsed."""


class FlightRecorder:
    """Fixed-capacity ring buffer of ``(seq, offset_ms, kind, name,
    fields)`` records.

    Args:
        capacity: maximum records retained; older records rotate out.
            The global sequence number keeps counting, so a dump shows
            how many records preceded the window (``first_seq``).

    Thread-safe; shared by the coordinator, its thread-tier workers
    and the signal handler.  Process-pool workers do *not* share it —
    their span completions reach the ring when the coordinator adopts
    the serialized spans.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(
                f"flight recorder capacity must be positive, "
                f"got {capacity}")
        self.capacity = capacity
        self._ring: Deque[Tuple[int, float, str, str,
                                Optional[Dict[str, object]]]] = \
            deque(maxlen=capacity)
        self._seq = 0
        self._dumps = 0
        self._epoch = time.perf_counter()
        # Reentrant on purpose: the SIGUSR2 dump handler runs on the
        # main thread at an arbitrary bytecode boundary, so it may
        # interrupt this very thread inside ``record``'s critical
        # section and call ``snapshot``.  With a plain Lock that is a
        # guaranteed self-deadlock (found by R011 in this PR); an
        # RLock lets the same thread reenter.
        self._lock = threading.RLock()

    def record(self, kind: str, name: str, **fields: object) -> None:
        """Append one record; constant-time, never raises."""
        offset = (time.perf_counter() - self._epoch) * 1000.0
        with self._lock:
            self._seq += 1
            self._ring.append((self._seq, offset, kind, name,
                               fields or None))

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self) -> List[Dict[str, object]]:
        """The ring's current contents, oldest first, as dicts."""
        with self._lock:
            entries = list(self._ring)
        records: List[Dict[str, object]] = []
        for seq, offset, kind, name, fields in entries:
            record: Dict[str, object] = {
                "seq": seq,
                "offset_ms": round(offset, 3),
                "kind": kind,
                "name": name,
            }
            if fields:
                record.update(fields)
            records.append(record)
        return records

    def dump(self, directory: str, reason: str,
             extra: Optional[Dict[str, object]] = None) -> str:
        """Write the ring to ``directory`` as one flight document.

        File names are deterministic and collision-free within the
        directory — ``flight-001-<reason>.json``, ``flight-002-...`` —
        numbered by how many dumps this recorder has produced, so a
        batch that trips twice leaves two ordered dumps.  Returns the
        path written.
        """
        records = self.snapshot()
        with self._lock:
            self._dumps += 1
            ordinal = self._dumps
        slug = "".join(char if char.isalnum() or char in "-_"
                       else "-" for char in reason) or "dump"
        path = os.path.join(directory,
                            f"flight-{ordinal:03d}-{slug}.json")
        document: Dict[str, object] = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "capacity": self.capacity,
            "first_seq": records[0]["seq"] if records else 0,
            "last_seq": records[-1]["seq"] if records else 0,
            "records": records,
        }
        if extra:
            document["context"] = extra
        try:
            os.makedirs(directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as sink:
                json.dump(document, sink, indent=2, ensure_ascii=False)
                sink.write("\n")
        except OSError as error:
            raise FlightRecorderError(
                f"cannot write flight dump {path}: {error}") from error
        return path

    @property
    def dumps(self) -> int:
        """How many dumps this recorder has written."""
        with self._lock:
            return self._dumps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlightRecorder(capacity={self.capacity}, "
                f"len={len(self)}, dumps={self.dumps})")


class NullFlightRecorder:
    """The do-nothing recorder: the default on every execution path."""

    enabled = False
    capacity = 0
    dumps = 0

    __slots__ = ()

    def record(self, kind: str, name: str, **fields: object) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> List[Dict[str, object]]:
        return []

    def dump(self, directory: str, reason: str,
             extra: Optional[Dict[str, object]] = None) -> str:
        raise FlightRecorderError(
            "the null flight recorder has nothing to dump; construct "
            "a FlightRecorder (or pass --trace-dir) to enable it")


#: Shared no-op instance.
NULL_RECORDER = NullFlightRecorder()

#: What recorder-aware signatures accept: a live recorder or the no-op.
RecorderLike = Union[FlightRecorder, NullFlightRecorder]


def load_flight_dump(path: str) -> Dict[str, object]:
    """Read and structurally validate one flight dump document."""
    try:
        with open(path, "r", encoding="utf-8") as source:
            document = json.load(source)
    except OSError as error:
        raise FlightRecorderError(
            f"cannot read flight dump {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise FlightRecorderError(
            f"flight dump {path} is not JSON: {error}") from error
    if not isinstance(document, dict) \
            or document.get("schema") != FLIGHT_SCHEMA:
        raise FlightRecorderError(
            f"flight dump {path} is not a {FLIGHT_SCHEMA} document")
    records = document.get("records")
    if not isinstance(records, list):
        raise FlightRecorderError(
            f"flight dump {path} has no records list")
    for position, record in enumerate(records):
        if not isinstance(record, dict):
            raise FlightRecorderError(
                f"flight dump {path}: records[{position}] is not an "
                f"object")
        for key in ("seq", "offset_ms", "kind", "name"):
            if key not in record:
                raise FlightRecorderError(
                    f"flight dump {path}: records[{position}] is "
                    f"missing {key!r}")
    return document


def render_flight_dump(document: Dict[str, object],
                       limit: int = 100) -> List[str]:
    """Human-readable lines for a flight dump (``repro trace``)."""
    records = document.get("records", [])
    lines = [f"  reason: {document.get('reason', '?')}  "
             f"records: {len(records)}  "
             f"window: #{document.get('first_seq', 0)}.."
             f"#{document.get('last_seq', 0)}"]
    shown = records[-limit:] if limit else records
    hidden = len(records) - len(shown)
    if hidden > 0:
        lines.append(f"  ... {hidden} older record(s) not shown")
    for record in shown:
        detail = " ".join(
            f"{key}={value}" for key, value in sorted(record.items())
            if key not in ("seq", "offset_ms", "kind", "name"))
        lines.append(
            f"  #{record.get('seq', 0):<6} "
            f"{record.get('offset_ms', 0.0):10.3f} ms  "
            f"{record.get('kind', '?'):<10} {record.get('name', '?')}"
            + (f"  {detail}" if detail else ""))
    return lines
