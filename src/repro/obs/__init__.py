"""Observability: metrics, per-query traces, logging, report schema.

This package is the instrumentation contract the rest of the library
reports through:

* :mod:`repro.obs.metrics` — :class:`MetricsCollector` (counters,
  histograms, timers) and the zero-overhead :data:`NULL_COLLECTOR`
  default every engine falls back to;
* :mod:`repro.obs.trace` — the per-query :class:`TraceRecorder` and a
  human-readable renderer;
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy and the
  CLI's ``--verbose`` configuration hook;
* :mod:`repro.obs.report` — the versioned ``repro.metrics/v1`` JSON
  report emitted by ``--metrics-json`` and validated in CI.

Metric names and the report schema are documented in
docs/OBSERVABILITY.md.
"""

from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (Collector, Histogram, MetricsCollector,
                               NullCollector, NULL_COLLECTOR, Stopwatch)
from repro.obs.report import (ReportError, SCHEMA_ID, build_report,
                              validate_report)
from repro.obs.trace import TraceEvent, TraceRecorder, render_trace

__all__ = [
    "Collector", "MetricsCollector", "NullCollector", "NULL_COLLECTOR",
    "Histogram", "Stopwatch",
    "TraceRecorder", "TraceEvent", "render_trace",
    "get_logger", "configure_logging",
    "build_report", "validate_report", "ReportError", "SCHEMA_ID",
]
