"""Observability: metrics, spans, flight recorder, exporters, logging.

This package is the instrumentation contract the rest of the library
reports through:

* :mod:`repro.obs.metrics` — :class:`MetricsCollector` (counters,
  histograms, timers, cross-process merging) and the zero-overhead
  :data:`NULL_COLLECTOR` default every engine falls back to;
* :mod:`repro.obs.spans` — end-to-end :class:`SpanTracer` spans with
  deterministic ids, cross-process adoption and the
  :data:`NULL_TRACER` default;
* :mod:`repro.obs.recorder` — the always-on bounded
  :class:`FlightRecorder` ring buffer, dumped on error / partial
  answer / breaker-open / ``SIGUSR2``;
* :mod:`repro.obs.trace` — the per-query :class:`TraceRecorder` and a
  human-readable renderer;
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy and the
  CLI's ``--verbose`` configuration hook;
* :mod:`repro.obs.report` — the versioned ``repro.metrics/v1`` /
  ``/v2`` JSON report schemas emitted by ``--metrics-json`` and
  validated in CI;
* :mod:`repro.obs.export` — the merged ``repro.metrics/v2`` report
  builder and the Prometheus text-exposition exporter.

Metric names, span names and both report schemas are documented in
docs/OBSERVABILITY.md.
"""

from repro.obs.export import (ExportError, build_report_v2,
                              escape_label_value, format_labels,
                              format_sample, parse_prometheus,
                              prometheus_lines, quantile_lines,
                              render_prometheus, workers_block)
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (Collector, Histogram, MetricsCollector,
                               NullCollector, NULL_COLLECTOR, Stopwatch)
from repro.obs.recorder import (FlightRecorder, FlightRecorderError,
                                NullFlightRecorder, NULL_RECORDER,
                                RecorderLike, load_flight_dump,
                                render_flight_dump)
from repro.obs.report import (ReportError, SCHEMA_ID, SCHEMA_ID_V2,
                              build_report, validate_report)
from repro.obs.spans import (NullTracer, NULL_TRACER, Span, SpanError,
                             SpanTracer, TracerLike, derive_trace_id,
                             load_spans, render_span_tree,
                             validate_spans, write_spans)
from repro.obs.trace import TraceEvent, TraceRecorder, render_trace

__all__ = [
    "Collector", "MetricsCollector", "NullCollector", "NULL_COLLECTOR",
    "Histogram", "Stopwatch",
    "Span", "SpanTracer", "NullTracer", "NULL_TRACER", "TracerLike",
    "SpanError", "derive_trace_id", "validate_spans", "load_spans",
    "write_spans", "render_span_tree",
    "FlightRecorder", "NullFlightRecorder", "NULL_RECORDER",
    "RecorderLike", "FlightRecorderError", "load_flight_dump",
    "render_flight_dump",
    "TraceRecorder", "TraceEvent", "render_trace",
    "get_logger", "configure_logging",
    "build_report", "validate_report", "ReportError", "SCHEMA_ID",
    "SCHEMA_ID_V2",
    "build_report_v2", "workers_block", "prometheus_lines",
    "render_prometheus", "parse_prometheus", "ExportError",
    "escape_label_value", "format_labels", "format_sample",
    "quantile_lines",
]
