"""The ``repro`` logger hierarchy.

Every module logs through ``get_logger("core.eager")`` etc., giving the
usual dotted hierarchy under the single root logger ``repro`` — so one
:func:`configure_logging` call (or any standard ``logging`` setup done
by an embedding application) controls the whole library.

The library itself never configures handlers on import: following
logging best practice, the root ``repro`` logger only gets a
:class:`logging.NullHandler` so an unconfigured program stays silent.
The CLI's ``--verbose`` flag calls :func:`configure_logging` to attach
a stderr handler at DEBUG.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Name of the library's root logger.
ROOT_LOGGER = "repro"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())

#: Marker attribute identifying the handler installed by
#: :func:`configure_logging`, so reconfiguration replaces it instead of
#: stacking duplicates.
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("core.eager")`` -> ``repro.core.eager``; an empty name
    returns the root ``repro`` logger.  Fully-qualified ``repro.*``
    names pass through unchanged, so ``get_logger(__name__)`` works in
    library modules.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(verbose: bool = False,
                      stream=None,
                      fmt: Optional[str] = None) -> logging.Logger:
    """Attach (or replace) the library's diagnostic handler.

    Args:
        verbose: DEBUG when true, WARNING otherwise — matching the
            CLI's ``-v`` toggle.
        stream: destination (default ``sys.stderr``, so diagnostics
            never mix with result output on stdout).
        fmt: ``logging`` format string override.

    Returns:
        The configured root ``repro`` logger.

    Idempotent: repeated calls reconfigure the one tagged handler
    rather than stacking duplicates.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    setattr(handler, _HANDLER_TAG, True)
    handler.setFormatter(logging.Formatter(
        fmt or "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        datefmt="%H:%M:%S"))
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG if verbose else logging.WARNING)
    return logger
