"""Counters, timers and histograms behind a near-zero-overhead no-op.

The query engines accept a *collector* and report everything the
paper's experimental section talks about — candidates pruned per
property, stack frames pushed, distribution-table sizes, posting-list
lengths — through it.  Two implementations share the interface:

* :data:`NULL_COLLECTOR` (a :class:`NullCollector`): every method is a
  no-op ``pass``.  This is the default everywhere, so an uninstrumented
  query pays one attribute load + no-op call at each hook point and
  allocates nothing.
* :class:`MetricsCollector`: accumulates named counters, histograms and
  timers, and (with ``trace=True``) records a per-query
  :class:`~repro.obs.trace.TraceRecorder`.

Hot loops may additionally guard on ``collector.enabled`` (a plain
class attribute) to skip argument construction entirely, and on
``collector.trace is not None`` before formatting trace event fields.

:class:`Stopwatch` is the library's single wall-clock primitive; the
CLI and the benchmark harness both time through it rather than calling
``time.perf_counter()`` ad hoc.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional, Union

from repro.obs.trace import DEFAULT_MAX_EVENTS, TraceRecorder


class Histogram:
    """Streaming summary statistics of observed values.

    Keeps count / sum / min / max (constant memory); enough for the
    mean and range columns the experiment tables report.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self, scale: float = 1.0, digits: int = 6
                 ) -> Dict[str, float]:
        """Plain-dict summary; ``scale`` converts units (e.g. s -> ms)."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count,
                "sum": round(self.total * scale, digits),
                "min": round(self.minimum * scale, digits),
                "max": round(self.maximum * scale, digits),
                "mean": round(self.mean * scale, digits)}


class Stopwatch:
    """The one wall-clock primitive (context manager or start/stop).

    ``elapsed`` is seconds; ``elapsed_ms`` the conventional report unit.
    While running, both read the live clock, so a stopwatch can be
    polled mid-flight.
    """

    __slots__ = ("_started", "_elapsed")

    def __init__(self):
        self._started: Optional[float] = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Freeze and return the elapsed seconds."""
        if self._started is not None:
            self._elapsed += time.perf_counter() - self._started
            self._started = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (live while running)."""
        if self._started is not None:
            return self._elapsed + time.perf_counter() - self._started
        return self._elapsed

    @property
    def elapsed_ms(self) -> float:
        """Elapsed milliseconds (live while running)."""
        return self.elapsed * 1000.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _Timed:
    """Context manager feeding one timing observation into a collector."""

    __slots__ = ("_collector", "_name", "_started")

    def __init__(self, collector: "MetricsCollector", name: str):
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_Timed":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._collector.observe_time(
            self._name, time.perf_counter() - self._started)


class _NullTimed:
    """Reusable do-nothing context manager for the no-op collector."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimed":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMED = _NullTimed()


class NullCollector:
    """The do-nothing collector: the default on every query path.

    All methods accept the full instrumentation vocabulary and discard
    it.  ``enabled`` is False so hot loops can skip argument
    construction; ``trace`` is None so trace-only formatting is never
    performed.
    """

    enabled = False
    trace: Optional[TraceRecorder] = None

    __slots__ = ()

    def count(self, name: str, value: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def observe_time(self, name: str, seconds: float) -> None:
        pass

    def time(self, name: str) -> _NullTimed:
        return _NULL_TIMED

    def event(self, name: str, **fields: object) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict]:
        return {}


#: Shared no-op instance; engines default their ``collector`` to this.
NULL_COLLECTOR = NullCollector()

#: What engine signatures accept: a recording collector or the no-op.
#: (A structural Protocol would be overkill — these two classes *are*
#: the interface, and the union keeps isinstance-free duck dispatch.)
Collector = Union["MetricsCollector", NullCollector]


class MetricsCollector:
    """Accumulates counters, histograms and timers for one query (or a
    batch of queries — nothing resets automatically).

    Args:
        trace: also record a per-query event trace (bounded by
            ``max_trace_events``); engines emit events only when this
            is on.
    """

    enabled = True

    __slots__ = ("counters", "histograms", "timers", "trace")

    def __init__(self, trace: bool = False,
                 max_trace_events: int = DEFAULT_MAX_EVENTS):
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Histogram] = {}
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(max_trace_events) if trace else None)

    # -- recording ---------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Feed one value into the histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def observe_time(self, name: str, seconds: float) -> None:
        """Feed one duration (seconds) into the timer ``name``."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Histogram()
        timer.observe(seconds)

    def time(self, name: str) -> _Timed:
        """``with collector.time("index.lookup"): ...``"""
        return _Timed(self, name)

    def event(self, name: str, **fields: object) -> None:
        """Record a trace event (no-op unless tracing is on)."""
        if self.trace is not None:
            self.trace.record(name, **fields)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict rendering: the ``metrics`` block of the report
        schema (timers in milliseconds; see docs/OBSERVABILITY.md)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: histogram.snapshot()
                           for name, histogram
                           in sorted(self.histograms.items())},
            "timers": {name: timer.snapshot(scale=1000.0)
                       for name, timer in sorted(self.timers.items())},
        }
