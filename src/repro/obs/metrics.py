"""Counters, timers and histograms behind a near-zero-overhead no-op.

The query engines accept a *collector* and report everything the
paper's experimental section talks about — candidates pruned per
property, stack frames pushed, distribution-table sizes, posting-list
lengths — through it.  Two implementations share the interface:

* :data:`NULL_COLLECTOR` (a :class:`NullCollector`): every method is a
  no-op ``pass``.  This is the default everywhere, so an uninstrumented
  query pays one attribute load + no-op call at each hook point and
  allocates nothing.
* :class:`MetricsCollector`: accumulates named counters, histograms and
  timers, and (with ``trace=True``) records a per-query
  :class:`~repro.obs.trace.TraceRecorder`.

Hot loops may additionally guard on ``collector.enabled`` (a plain
class attribute) to skip argument construction entirely, and on
``collector.trace is not None`` before formatting trace event fields.

Two cross-cutting seams ride on the collector so the engines never
need new parameters:

* **Spans.**  A collector constructed with a
  :class:`~repro.obs.spans.SpanTracer` turns every ``collector.time``
  block into a span under the caller's current span — the existing
  timer hook points (``index.lookup``, ``prstack.scan``,
  ``eager.climb``, ``storage.load`` …) *are* the span tree's leaves.
  :meth:`MetricsCollector.mark` additionally annotates the current
  span (cache hits, entry counts) without allocating when no span is
  open.
* **Merging.**  :meth:`MetricsCollector.merge` /
  :meth:`~MetricsCollector.merge_snapshot` fold another collector (or
  its serialized snapshot, e.g. shipped back from a process worker)
  into this one — counters add, histogram/timer summaries combine via
  :meth:`Histogram.absorb` — which is how ``repro batch`` produces one
  merged ``repro.metrics/v2`` report instead of coordinator-only
  numbers.

:class:`Stopwatch` is the library's single wall-clock primitive; the
CLI and the benchmark harness both time through it rather than calling
``time.perf_counter()`` ad hoc.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Optional, Union

from repro.obs.trace import DEFAULT_MAX_EVENTS, TraceRecorder


class Histogram:
    """Streaming summary statistics of observed values.

    Keeps count / sum / min / max plus a bounded, deterministically
    thinned sample reservoir: when the reservoir fills, every other
    retained sample is dropped and the retention stride doubles, so
    memory stays constant while :meth:`percentile` keeps answering
    from an evenly spaced subsample of the whole stream.  A histogram
    shared across threads (one owned by a :class:`MetricsCollector`)
    is mutated and read only under the collector's ``_lock``; use the
    collector's :meth:`MetricsCollector.percentile` accessor rather
    than reaching for the histogram directly.
    """

    #: Reservoir capacity; reaching it halves the samples and doubles
    #: the stride (retention stays deterministic — no RNG).
    MAX_SAMPLES = 4096

    __slots__ = ("count", "total", "minimum", "maximum", "_samples",
                 "_stride", "_tick")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list = []
        self._stride = 1
        self._tick = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._tick += 1
        if self._tick >= self._stride:
            self._tick = 0
            self._samples.append(value)
            if len(self._samples) >= self.MAX_SAMPLES:
                del self._samples[::2]
                self._stride *= 2

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in ``[0, 1]``) of the retained
        samples, linearly interpolated between neighbours.

        Exact until the reservoir first fills (:data:`MAX_SAMPLES`
        observations), an evenly strided estimate after.  Returns 0.0
        when nothing was observed, mirroring :attr:`mean`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be within [0, 1], "
                             f"got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = q * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        return ordered[low] + (ordered[high] - ordered[low]) \
            * (rank - low)

    def quantiles(self, qs: "tuple" = (0.5, 0.99), scale: float = 1.0,
                  digits: int = 6) -> Dict[str, float]:
        """Several percentiles at once, keyed by the quantile rendered
        as a short string (``{"0.5": ..., "0.99": ...}``); ``scale``
        converts units like :meth:`snapshot` does."""
        return {_quantile_key(q): round(self.percentile(q) * scale,
                                        digits)
                for q in qs}

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self, scale: float = 1.0, digits: int = 6
                 ) -> Dict[str, float]:
        """Plain-dict summary; ``scale`` converts units (e.g. s -> ms)."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count,
                "sum": round(self.total * scale, digits),
                "min": round(self.minimum * scale, digits),
                "max": round(self.maximum * scale, digits),
                "mean": round(self.mean * scale, digits)}

    def absorb(self, count: int, total: float, minimum: float,
               maximum: float,
               samples: "Optional[list]" = None) -> None:
        """Fold another histogram's summary into this one.

        The combining step behind cross-process merging: count/sum
        add, min/max extend, and (when the source is in-process and
        can hand them over) retained samples pool into this reservoir
        so merged percentiles stay meaningful.  A zero-count summary
        is a no-op so absorbing an empty snapshot cannot corrupt
        min/max.
        """
        if count <= 0:
            return
        self.count += count
        self.total += total
        if minimum < self.minimum:
            self.minimum = minimum
        if maximum > self.maximum:
            self.maximum = maximum
        if samples:
            self._samples.extend(samples)
            while len(self._samples) >= self.MAX_SAMPLES:
                del self._samples[::2]
                self._stride *= 2


def _quantile_key(q: float) -> str:
    """``0.5 -> "0.5"`` — a stable short label for report keys and the
    Prometheus ``quantile`` label."""
    text = repr(float(q))
    return text[:-2] if text.endswith(".0") else text


class Stopwatch:
    """The one wall-clock primitive (context manager or start/stop).

    ``elapsed`` is seconds; ``elapsed_ms`` the conventional report unit.
    While running, both read the live clock, so a stopwatch can be
    polled mid-flight.
    """

    __slots__ = ("_started", "_elapsed")

    def __init__(self):
        self._started: Optional[float] = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Freeze and return the elapsed seconds."""
        if self._started is not None:
            self._elapsed += time.perf_counter() - self._started
            self._started = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (live while running)."""
        if self._started is not None:
            return self._elapsed + time.perf_counter() - self._started
        return self._elapsed

    @property
    def elapsed_ms(self) -> float:
        """Elapsed milliseconds (live while running)."""
        return self.elapsed * 1000.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _Timed:
    """Context manager feeding one timing observation into a collector."""

    __slots__ = ("_collector", "_name", "_started")

    def __init__(self, collector: "MetricsCollector", name: str):
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_Timed":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._collector.observe_time(
            self._name, time.perf_counter() - self._started)


class _TimedSpan:
    """A :class:`_Timed` that also opens a span for the same interval.

    This is the timer→span bridge: when the collector carries a
    tracer, every ``collector.time(name)`` block in the engines and
    the storage layer becomes both a timer observation *and* a span
    named ``name`` under the caller's current span.
    """

    __slots__ = ("_collector", "_name", "_started", "_ctx")

    def __init__(self, collector: "MetricsCollector", name: str):
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_TimedSpan":
        self._ctx = self._collector.tracer.span(self._name)
        self._ctx.__enter__()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._collector.observe_time(
            self._name, time.perf_counter() - self._started)
        self._ctx.__exit__(exc_type, exc, tb)


class _NullTimed:
    """Reusable do-nothing context manager for the no-op collector."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimed":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMED = _NullTimed()


class NullCollector:
    """The do-nothing collector: the default on every query path.

    All methods accept the full instrumentation vocabulary and discard
    it.  ``enabled`` is False so hot loops can skip argument
    construction; ``trace`` is None so trace-only formatting is never
    performed.
    """

    enabled = False
    trace: Optional[TraceRecorder] = None
    tracer = None

    __slots__ = ()

    def count(self, name: str, value: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def observe_time(self, name: str, seconds: float) -> None:
        pass

    def time(self, name: str) -> _NullTimed:
        return _NULL_TIMED

    def event(self, name: str, **fields: object) -> None:
        pass

    def mark(self, key: str, value: float = 1) -> None:
        pass

    def merge(self, other: "MetricsCollector") -> None:
        pass

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict]:
        return {}


#: Shared no-op instance; engines default their ``collector`` to this.
NULL_COLLECTOR = NullCollector()

#: What engine signatures accept: a recording collector or the no-op.
#: (A structural Protocol would be overkill — these two classes *are*
#: the interface, and the union keeps isinstance-free duck dispatch.)
Collector = Union["MetricsCollector", NullCollector]


class MetricsCollector:
    """Accumulates counters, histograms and timers for one query (or a
    batch of queries — nothing resets automatically).

    Args:
        trace: also record a per-query event trace (bounded by
            ``max_trace_events``); engines emit events only when this
            is on.
        tracer: a :class:`repro.obs.spans.SpanTracer`; when set, every
            ``time(name)`` block is also recorded as a span (see
            :class:`_TimedSpan`) and :meth:`mark` annotates the
            current span.
    """

    enabled = True

    __slots__ = ("counters", "histograms", "timers", "trace", "tracer",
                 "_lock")

    def __init__(self, trace: bool = False,
                 max_trace_events: int = DEFAULT_MAX_EVENTS,
                 tracer=None):
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Histogram] = {}
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(max_trace_events) if trace else None)
        self.tracer = tracer if tracer is not None \
            and getattr(tracer, "enabled", False) else None
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    #
    # One collector is shared by the coordinator and its thread-tier
    # workers (and by `_ResilienceTracker`), so every mutation takes
    # the lock: `d[k] = d.get(k, 0) + v` is two bytecodes apart and
    # loses updates under a thread switch (R008).  The null collector
    # keeps the zero-cost path; an *attached* collector pays one
    # uncontended lock per hook.

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Feed one value into the histogram ``name``."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def observe_time(self, name: str, seconds: float) -> None:
        """Feed one duration (seconds) into the timer ``name``."""
        with self._lock:
            timer = self.timers.get(name)
            if timer is None:
                timer = self.timers[name] = Histogram()
            timer.observe(seconds)

    def time(self, name: str) -> Union[_Timed, _TimedSpan]:
        """``with collector.time("index.lookup"): ...``

        With a tracer attached, the block is also a span (the
        timer→span bridge that gives the engines span coverage with
        no signature changes).
        """
        if self.tracer is not None:
            return _TimedSpan(self, name)
        return _Timed(self, name)

    def event(self, name: str, **fields: object) -> None:
        """Record a trace event (no-op unless tracing is on)."""
        if self.trace is not None:
            self.trace.record(name, **fields)

    def mark(self, key: str, value: float = 1) -> None:
        """Bump a numeric attribute on the tracer's current span.

        A no-op without a tracer (or outside any span), so call sites
        like the cache-hit path stay one attribute load when spans are
        off.
        """
        if self.tracer is not None:
            span = self.tracer.current()
            if span is not None:
                span.bump(key, value)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's accumulations into this one."""
        with self._lock:
            for name, value in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            for target, source in ((self.histograms, other.histograms),
                                   (self.timers, other.timers)):
                for name, histogram in source.items():
                    mine = target.get(name)
                    if mine is None:
                        mine = target[name] = Histogram()
                    mine.absorb(histogram.count, histogram.total,
                                histogram.minimum, histogram.maximum,
                                samples=histogram._samples)

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a serialized :meth:`snapshot` into this collector.

        This is the cross-process path: a worker ships its snapshot
        back with the result rows and the coordinator absorbs it here.
        Timer summaries arrive in milliseconds (the snapshot unit) and
        are scaled back to the seconds the live timers accumulate in.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for block, target, scale in (
                    ("histograms", self.histograms, 1.0),
                    ("timers", self.timers, 1.0 / 1000.0)):
                for name, summary in snapshot.get(block, {}).items():
                    mine = target.get(name)
                    if mine is None:
                        mine = target[name] = Histogram()
                    mine.absorb(int(summary.get("count", 0)),
                                float(summary.get("sum", 0.0)) * scale,
                                float(summary.get("min", 0.0)) * scale,
                                float(summary.get("max", 0.0)) * scale)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self.counters.get(name, 0)

    def percentile(self, name: str, q: float,
                   kind: str = "timers") -> float:
        """The ``q``-quantile of the timer (seconds) or histogram
        ``name``, read under the collector lock — the one sanctioned
        way to get p50/p99 out of a live collector (R008: histogram
        internals are guarded by this ``_lock``).  0.0 when the metric
        was never observed.
        """
        if kind not in ("timers", "histograms"):
            raise ValueError(f"kind must be 'timers' or 'histograms', "
                             f"got {kind!r}")
        with self._lock:
            block = self.timers if kind == "timers" else self.histograms
            histogram = block.get(name)
            return histogram.percentile(q) if histogram is not None \
                else 0.0

    def quantile_snapshot(self, qs: "tuple" = (0.5, 0.9, 0.99)
                          ) -> Dict[str, Dict]:
        """Per-metric quantiles, shaped like :meth:`snapshot` (timers
        scaled to milliseconds) — the block
        :func:`repro.obs.export.quantile_lines` renders as
        ``{quantile="..."}``-labelled Prometheus samples."""
        with self._lock:
            return {
                "histograms": {name: histogram.quantiles(qs)
                               for name, histogram
                               in sorted(self.histograms.items())
                               if histogram.count},
                "timers": {name: timer.quantiles(qs, scale=1000.0)
                           for name, timer
                           in sorted(self.timers.items())
                           if timer.count},
            }

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict rendering: the ``metrics`` block of the report
        schema (timers in milliseconds; see docs/OBSERVABILITY.md)."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "histograms": {name: histogram.snapshot()
                               for name, histogram
                               in sorted(self.histograms.items())},
                "timers": {name: timer.snapshot(scale=1000.0)
                           for name, timer
                           in sorted(self.timers.items())},
            }
