"""Per-query trace recording.

A :class:`TraceRecorder` captures an ordered sequence of named events
with wall-clock offsets — the micro-narrative of one query execution
(seeds evaluated, candidates pruned, heap threshold raises, ...).
Recording is opt-in: the engines only emit events when a collector was
constructed with ``trace=True``, so the default query path never pays
for string formatting or event storage.

Event field values should be JSON-representable scalars (str, int,
float, bool) so traces can be exported by ``--metrics-json`` verbatim.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional

#: Default cap on recorded events; beyond it events are counted but
#: dropped, keeping worst-case memory bounded on huge queries.
DEFAULT_MAX_EVENTS = 100_000


class TraceEvent:
    """One recorded step of a query execution."""

    __slots__ = ("seq", "offset_s", "name", "fields")

    def __init__(self, seq: int, offset_s: float, name: str,
                 fields: Dict[str, object]):
        self.seq = seq
        self.offset_s = offset_s
        self.name = name
        self.fields = fields

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (used by the metrics report)."""
        return {"seq": self.seq,
                "offset_ms": round(self.offset_s * 1000.0, 6),
                "name": self.name,
                **self.fields}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.seq}, {self.name}, {self.fields})"


class TraceRecorder:
    """Bounded, append-only event log for one query."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._started = time.perf_counter()

    def record(self, name: str, **fields: object) -> None:
        """Append one event (dropped silently past ``max_events``)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(len(self.events),
                       time.perf_counter() - self._started, name, fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def as_dicts(self) -> List[Dict[str, object]]:
        """Every event as a JSON-friendly dict."""
        return [event.as_dict() for event in self.events]


def render_trace(trace: Optional[TraceRecorder],
                 limit: int = 50) -> List[str]:
    """Human-readable lines for a recorded trace (``--profile`` output).

    Shows at most ``limit`` events; elision and recorder-side drops are
    reported so truncation is never silent.
    """
    if trace is None or not trace.events:
        return ["  (no trace recorded)"]
    lines = []
    shown = trace.events[:limit]
    for event in shown:
        detail = " ".join(f"{key}={value}" for key, value
                          in event.fields.items())
        lines.append(f"  {event.offset_s * 1000.0:9.3f} ms  "
                     f"{event.name:<24s} {detail}".rstrip())
    hidden = len(trace.events) - len(shown)
    if hidden > 0:
        lines.append(f"  ... {hidden} more event(s) not shown")
    if trace.dropped:
        lines.append(f"  ... {trace.dropped} event(s) dropped at the "
                     f"{trace.max_events}-event recorder cap")
    return lines
