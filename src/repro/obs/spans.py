"""End-to-end spans: the causal skeleton of a query's execution.

A *span* is one named, timed step of work — ``batch``, ``chunk``,
``query``, ``prstack.scan`` — with a parent pointer, so the spans of
one batch reconstruct the full lifecycle of every query as a tree:
which chunk it ran in, which retry tier answered it, which engine
phases the time went to.  Three properties distinguish this module
from ad-hoc tracing:

* **Deterministic ids.**  Span ids are structural (``s0``, ``s0.2``,
  ``s0.2.w.0`` — each child numbered under its parent), and trace ids
  are content-derived (:func:`derive_trace_id` hashes the workload
  description).  Two runs of the same seeded workload produce the same
  ids, which makes span trees diffable in tests and across processes.
* **Cross-process propagation.**  A :class:`SpanTracer` can be told to
  hang its root under a foreign span id (``root_parent``/``root_id``),
  so a process-pool worker records spans that already point at the
  coordinator's chunk span; the coordinator absorbs the serialized
  spans with :meth:`SpanTracer.adopt`, shifting the worker's private
  clock onto its own.
* **Null-object default.**  :data:`NULL_TRACER` costs one attribute
  load per hook point; the engines never know whether spans are on.

The bridge into the engines is :class:`repro.obs.metrics
.MetricsCollector`: when a collector carries a tracer, every
``collector.time(name)`` block becomes a span under the current one —
so ``index.lookup``, ``prstack.scan``, ``eager.seed``/``eager.climb``,
``storage.load`` and friends appear in the tree without any engine
signature changes.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Union

from repro.exceptions import ReproError

#: Cap on spans one tracer retains; beyond it spans are counted in
#: ``dropped`` and discarded (the same never-silent policy as the
#: trace recorder's).
DEFAULT_MAX_SPANS = 50_000

#: Span status values (``ok`` is implied and not serialized).
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_PARTIAL = "partial"


def derive_trace_id(*parts: object) -> str:
    """A 16-hex-digit trace id derived from the workload description.

    Hash-derived rather than random so that a seeded, fault-injected
    run reproduces the *same* trace id every time (the property the
    span-determinism tests pin down).
    """
    material = "\x1f".join(str(part) for part in parts)
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=8).hexdigest()


class Span:
    """One timed, named step of work in a trace tree.

    ``start_ms`` is relative to the owning tracer's epoch (its
    construction time); a worker-side span is shifted onto the
    coordinator's clock when adopted.  ``attrs`` values must be
    JSON-representable scalars.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start_ms", "duration_ms", "status", "attrs",
                 "_children", "_started")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, start_ms: float):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.status = STATUS_OK
        self.attrs: Dict[str, object] = {}
        self._children = 0
        self._started: Optional[float] = None

    def annotate(self, **attrs: object) -> "Span":
        """Attach attributes (last write per key wins)."""
        self.attrs.update(attrs)
        return self

    def bump(self, key: str, value: Union[int, float] = 1) -> None:
        """Increment a numeric attribute (created at 0) — the span-
        local form of a counter, used for per-span cache accounting."""
        current = self.attrs.get(key, 0)
        self.attrs[key] = (current if isinstance(current, (int, float))
                           else 0) + value

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (the span export format)."""
        record: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start_ms, 6),
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.status != STATUS_OK:
            record["status"] = self.status
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Span":
        """Rebuild a span from its exported dict (adopt path)."""
        span = cls(str(record["trace_id"]), str(record["span_id"]),
                   record.get("parent_id"),  # type: ignore[arg-type]
                   str(record["name"]), float(record["start_ms"]))
        span.duration_ms = float(record.get("duration_ms", 0.0))
        span.status = str(record.get("status", STATUS_OK))
        attrs = record.get("attrs")
        if isinstance(attrs, dict):
            span.attrs = dict(attrs)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.span_id}, {self.name!r}, "
                f"parent={self.parent_id})")


class SpanTracer:
    """Records one trace (typically: one batch) worth of spans.

    Args:
        trace_id: the trace every span belongs to; derive it from the
            workload with :func:`derive_trace_id` for deterministic
            ids, or leave the default for ad-hoc tracing.
        root_id: id the *first* root-level span gets (further
            root-level spans append ``.r<n>``).  A worker tracer is
            constructed with the coordinator-assigned id here so its
            span ids never collide with another worker's.
        root_parent: parent id pre-assigned to root-level spans — the
            cross-process propagation hook: the coordinator passes its
            chunk span's id, and the worker's spans come back already
            pointing at it.
        recorder: a :class:`repro.obs.recorder.FlightRecorder`; every
            finished span is also appended to its ring buffer.
        max_spans: retention cap (excess spans are counted, dropped).

    Thread-safe: the current-span context is tracked per thread, so
    chunk workers on a thread pool each nest their own spans correctly
    while sharing one tracer.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None,
                 root_id: str = "s0",
                 root_parent: Optional[str] = None,
                 recorder=None,
                 max_spans: int = DEFAULT_MAX_SPANS):
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, "
                             f"got {max_spans}")
        self.trace_id = trace_id if trace_id is not None \
            else derive_trace_id("adhoc")
        self.root_id = root_id
        self.root_parent = root_parent
        self.recorder = recorder
        self.max_spans = max_spans
        self.finished: List[Span] = []
        self.dropped = 0
        self._roots = 0
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- current-span context -------------------------------------------------

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread (None outside)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    # -- span lifecycle -------------------------------------------------------

    def begin(self, name: str, parent: Optional[Span] = None,
              **attrs: object) -> Span:
        """Open a span (explicit finish); ``parent`` defaults to the
        current span on this thread, else the tracer root level."""
        if parent is None:
            parent = self.current()
        with self._lock:
            if parent is not None:
                span_id = f"{parent.span_id}.{parent._children}"
                parent._children += 1
                parent_id: Optional[str] = parent.span_id
            else:
                span_id = self.root_id if self._roots == 0 \
                    else f"{self.root_id}.r{self._roots}"
                self._roots += 1
                parent_id = self.root_parent
        span = Span(self.trace_id, span_id, parent_id, name,
                    (time.perf_counter() - self._epoch) * 1000.0)
        span._started = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)
        return span

    def finish(self, span: Span, status: Optional[str] = None,
               **attrs: object) -> Span:
        """Close a span: fix its duration, file it, feed the recorder."""
        if span._started is not None:
            span.duration_ms = \
                (time.perf_counter() - span._started) * 1000.0
            span._started = None
        if status is not None:
            span.status = status
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            if len(self.finished) >= self.max_spans:
                self.dropped += 1
            else:
                self.finished.append(span)
        if self.recorder is not None and self.recorder.enabled:
            self.recorder.record("span", span.name,
                                 span_id=span.span_id,
                                 parent_id=span.parent_id,
                                 duration_ms=round(span.duration_ms, 3),
                                 status=span.status)
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attrs: object):
        """``with tracer.span("query", terms="k1 k2") as span: ...``

        The span becomes the thread's current span for the duration;
        an escaping exception marks it ``status="error"`` with the
        error type attached (and is re-raised).
        """
        span = self.begin(name, parent=parent, **attrs)
        self._push(span)
        try:
            yield span
        except BaseException as error:
            self.finish(span, status=STATUS_ERROR,
                        error=type(error).__name__)
            raise
        finally:
            self._pop(span)
            if span._started is not None:
                self.finish(span)

    # -- cross-process adoption ----------------------------------------------

    def adopt(self, records: Iterable[Dict[str, object]],
              parent: Optional[Span] = None,
              shift_ms: float = 0.0) -> int:
        """Absorb spans serialized by another process's tracer.

        Args:
            records: exported span dicts (:meth:`Span.as_dict` shape).
            parent: span to hang *orphan* records under (records whose
                ``parent_id`` is None — a worker tracer constructed
                with ``root_parent`` has none of those).
            shift_ms: added to every ``start_ms``, moving the worker's
                private clock onto this tracer's (pass the chunk
                span's ``start_ms``; residual skew is the pool's
                scheduling latency and is not corrected).

        Returns the number of spans adopted.
        """
        adopted = 0
        with self._lock:
            for record in records:
                if len(self.finished) >= self.max_spans:
                    self.dropped += 1
                    continue
                span = Span.from_dict(record)
                span.start_ms += shift_ms
                if span.parent_id is None and parent is not None:
                    span.parent_id = parent.span_id
                self.finished.append(span)
                adopted += 1
        return adopted

    # -- export ---------------------------------------------------------------

    def export(self) -> List[Dict[str, object]]:
        """Every finished span as a dict, in ``start_ms`` order (ties
        broken by span id, so the order is deterministic)."""
        with self._lock:
            spans = list(self.finished)
        spans.sort(key=lambda span: (span.start_ms, span.span_id))
        return [span.as_dict() for span in spans]


class NullTracer:
    """The do-nothing tracer: the default on every execution path."""

    enabled = False
    trace_id = ""
    recorder = None

    __slots__ = ()

    def current(self) -> Optional[Span]:
        return None

    def begin(self, name: str, parent: Optional[Span] = None,
              **attrs: object) -> None:
        return None

    def finish(self, span, status: Optional[str] = None,
               **attrs: object) -> None:
        return None

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attrs: object):
        yield None

    def adopt(self, records, parent=None, shift_ms: float = 0.0) -> int:
        return 0

    def export(self) -> List[Dict[str, object]]:
        return []


#: Shared no-op instance.
NULL_TRACER = NullTracer()

#: What span-aware signatures accept: a live tracer or the no-op.
TracerLike = Union[SpanTracer, NullTracer]


class SpanError(ReproError):
    """A span export does not conform to the documented shape."""


def validate_spans(spans: object) -> List[Dict[str, object]]:
    """Check an exported span list: shapes, one trace id, resolvable
    parents.  Returns the list (for chaining) or raises
    :class:`SpanError` naming the first violation — the machine-
    checkable contract the CI trace smoke runs against a fresh dump.

    A ``parent_id`` may be absent from the list only at the roots
    (None): every non-None parent must name another span in the dump,
    otherwise the tree cannot be reconstructed.
    """
    if not isinstance(spans, list):
        raise SpanError(f"span dump must be a list, "
                        f"got {type(spans).__name__}")
    ids = set()
    trace_ids = set()
    for position, record in enumerate(spans):
        if not isinstance(record, dict):
            raise SpanError(f"spans[{position}] must be an object")
        for key in ("trace_id", "span_id", "name"):
            if not isinstance(record.get(key), str) or not record[key]:
                raise SpanError(
                    f"spans[{position}].{key} must be a non-empty "
                    f"string")
        for key in ("start_ms", "duration_ms"):
            value = record.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise SpanError(
                    f"spans[{position}].{key} must be a number")
        parent = record.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            raise SpanError(
                f"spans[{position}].parent_id must be a string or "
                f"null")
        if record["span_id"] in ids:
            raise SpanError(
                f"duplicate span id {record['span_id']!r}")
        ids.add(record["span_id"])
        trace_ids.add(record["trace_id"])
    if len(trace_ids) > 1:
        raise SpanError(f"span dump mixes {len(trace_ids)} trace ids: "
                        f"{sorted(trace_ids)}")
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None and parent not in ids:
            raise SpanError(
                f"span {record['span_id']!r} has unresolvable parent "
                f"{parent!r}")
    return spans  # type: ignore[return-value]


def load_spans(path: str) -> List[Dict[str, object]]:
    """Read a ``spans.jsonl`` dump (one span object per line)."""
    spans: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as source:
            for number, line in enumerate(source, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(json.loads(line))
                except json.JSONDecodeError as error:
                    raise SpanError(f"{path}:{number}: not JSON: "
                                    f"{error}") from error
    except OSError as error:
        raise SpanError(f"cannot read span dump {path}: "
                        f"{error}") from error
    return spans


def write_spans(spans: List[Dict[str, object]], path: str) -> None:
    """Write a span list as JSON lines (the ``spans.jsonl`` format)."""
    try:
        with open(path, "w", encoding="utf-8") as sink:
            for span in spans:
                json.dump(span, sink, ensure_ascii=False)
                sink.write("\n")
    except OSError as error:
        raise SpanError(f"cannot write span dump {path}: "
                        f"{error}") from error


def render_span_tree(spans: List[Dict[str, object]],
                     limit: int = 200) -> List[str]:
    """Human-readable tree lines for a span dump (``repro trace``).

    Children are indented under their parent, siblings ordered by
    start time; at most ``limit`` spans are shown, with elision
    reported so truncation is never silent.
    """
    if not spans:
        return ["  (no spans recorded)"]
    by_parent: Dict[Optional[str], List[Dict[str, object]]] = {}
    ids = {record["span_id"] for record in spans}
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None and parent not in ids:
            parent = None  # orphan (partial dump): show at root level
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: (r.get("start_ms", 0.0),
                                     r["span_id"]))

    lines: List[str] = []
    shown = 0

    def walk(parent: Optional[str], depth: int) -> None:
        nonlocal shown
        for record in by_parent.get(parent, ()):
            if shown >= limit:
                return
            shown += 1
            indent = "  " * depth
            status = record.get("status", STATUS_OK)
            marker = "" if status == STATUS_OK else f" [{status}]"
            attrs = record.get("attrs") or {}
            detail = " ".join(f"{key}={value}" for key, value
                              in sorted(attrs.items()))
            lines.append(
                f"  {record.get('start_ms', 0.0):9.3f} ms "
                f"{record.get('duration_ms', 0.0):9.3f} ms  "
                f"{indent}{record['name']}{marker}"
                + (f"  {detail}" if detail else ""))
            walk(record["span_id"], depth + 1)  # type: ignore[arg-type]

    walk(None, 0)
    hidden = len(spans) - shown
    if hidden > 0:
        lines.append(f"  ... {hidden} more span(s) not shown")
    return lines
