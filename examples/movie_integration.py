#!/usr/bin/env python3
"""Data-integration scenario: conflicting sources become a p-document.

The paper motivates keyword search on probabilistic XML with exactly
this use case: "A p-document may be integrated from multiple data
sources, so it could be difficult for users to know its schema in
advance."  Two movie catalogues disagree on years and directors; the
integrator records each conflict as a MUX choice (weighted by source
reliability) and each single-source-only record as an IND option.
Keyword queries then return the most probable SLCA answers without the
user knowing which source contributed what.

Run:  python examples/movie_integration.py
"""

import tempfile

from repro import (Database, DocumentBuilder, load_database, save_database,
                   topk_search, validate_document)

# (title, year by source A, year by source B, director, only-in-source)
CATALOGUE = [
    ("stalker", "1979", "1980", "tarkovsky", None),
    ("nostalghia", "1983", "1983", "tarkovsky", None),
    ("paris texas", "1984", "1985", "wenders", None),
    ("alice in the cities", "1974", None, "wenders", "A"),
    ("kings of the road", None, "1976", "wenders", "B"),
]

#: Source reliabilities the integrator assigned (sum <= 1 per conflict).
TRUST_A, TRUST_B = 0.7, 0.3


def build_integrated_catalogue():
    builder = DocumentBuilder("catalogue")
    for title, year_a, year_b, director, only_in in CATALOGUE:
        if only_in is None:
            _movie(builder, title, year_a, year_b, director, prob=1.0)
        else:
            # A record seen by one source only: present with that
            # source's reliability, independent of everything else.
            trust = TRUST_A if only_in == "A" else TRUST_B
            with builder.ind():
                _movie(builder, title, year_a or year_b,
                       None, director, prob=trust)
    return builder.build()


def _movie(builder, title, year_a, year_b, director, prob):
    with builder.element("movie", prob=prob):
        builder.leaf("title", text=title)
        builder.leaf("director", text=director)
        if year_b is None or year_a == year_b:
            builder.leaf("year", text=year_a)
        else:
            # The sources disagree: mutually exclusive possibilities.
            with builder.mux():
                builder.leaf("year", text=year_a, prob=TRUST_A)
                builder.leaf("year", text=year_b, prob=TRUST_B)


def main() -> None:
    document = build_integrated_catalogue()
    validate_document(document)
    database = Database.from_document(document)
    print(f"integrated catalogue: {len(document)} nodes, "
          f"{document.theoretical_world_count()} raw worlds\n")

    queries = [
        (["wenders", "1984"], "which Wenders entry is from 1984?"),
        (["tarkovsky", "1980"], "source B says stalker is from 1980"),
        (["wenders", "1976"], "only source B lists this movie"),
        (["kings", "road"], "certain within the record, uncertain record"),
    ]
    for keywords, why in queries:
        outcome = topk_search(database, keywords, k=3)
        print(f"query {keywords}  ({why})")
        for result in outcome:
            print(f"   <{result.label}> {result.code}  "
                  f"Pr_slca = {result.probability:.3f}")
        print()

    # The index round-trips through the on-disk database format.
    with tempfile.TemporaryDirectory() as directory:
        save_database(database, directory)
        reloaded = load_database(directory)
        check = topk_search(reloaded, ["wenders", "1984"], k=1)
        assert check.results[0].probability == \
            topk_search(database, ["wenders", "1984"], k=1).results[0] \
            .probability
        print(f"database persisted and reloaded from {directory!r}: "
              "same answers")


if __name__ == "__main__":
    main()
