#!/usr/bin/env python3
"""Structured twig queries vs. keyword search on the same p-document.

The paper's introduction argues for keyword search because structured
queries "require users to know the schema".  This example runs both on
one uncertain catalogue: a twig pattern pinpoints bindings when you
know the structure; the keyword query finds the same answers
schema-free — and the probabilities line up.

Run:  python examples/twig_queries.py
"""

from repro import Database, DocumentBuilder, topk_search
from repro.twig import topk_twig_search, twig_match_probability


def build_catalogue() -> Database:
    builder = DocumentBuilder("catalogue")
    with builder.element("movie"):
        builder.leaf("title", text="paris texas")
        builder.leaf("director", text="wenders")
        with builder.mux():
            builder.leaf("year", text="1984", prob=0.7)
            builder.leaf("year", text="1985", prob=0.3)
        with builder.ind():
            with builder.element("award", prob=0.6):
                builder.leaf("name", text="palme d'or")
                builder.leaf("year", text="1984")
    with builder.element("movie"):
        builder.leaf("title", text="alice in the cities")
        builder.leaf("director", text="wenders")
        builder.leaf("year", text="1974")
    with builder.element("documentary"):
        builder.leaf("title", text="tokyo ga")
        builder.leaf("director", text="wenders")
        with builder.ind():
            builder.leaf("year", text="1985", prob=0.5)
    return Database.from_document(builder.build())


def main() -> None:
    database = build_catalogue()

    patterns = [
        'movie[director ~ "wenders"][year ~ "1984"]',
        'movie[award/name ~ "palme"]',
        'movie[award[year ~ "1984"]]',
        '*[director ~ "wenders"][year ~ "1985"]',
    ]
    print("structured twig queries "
          "(P = probability the pattern roots here):\n")
    for text in patterns:
        outcome = topk_twig_search(database.index, text, k=5)
        anywhere = twig_match_probability(database.index, text)
        print(f"  {text}")
        print(f"    P(matches anywhere) = {anywhere:.3f}")
        for result in outcome:
            print(f"    <{result.label}> {result.code}  "
                  f"P = {result.probability:.3f}")
        print()

    print("the schema-free counterpart (top-k keyword SLCA):\n")
    for keywords in (["wenders", "1984"], ["palme", "1984"]):
        outcome = topk_search(database, keywords, k=3)
        print(f"  keywords {keywords}")
        for result in outcome:
            print(f"    <{result.label}> {result.code}  "
                  f"Pr_slca = {result.probability:.3f}")
        print()

    # The structured and keyword views agree where they overlap: the
    # first movie matches "wenders 1984" through the MUX'd year with
    # probability 0.7, or through the award's year (0.6 independent).
    twig = topk_twig_search(
        database.index, 'movie[director ~ "wenders"][year ~ "1984"]',
        k=1).results[0]
    assert twig.probability == 0.7
    keyword = topk_search(database, ["wenders", "1984"], k=1).results[0]
    assert keyword.probability == 1 - (1 - 0.7) * (1 - 0.6)
    print("twig P(year child = 1984) = 0.7; keyword coverage adds the "
          "award path: 1 - 0.3*0.4 = 0.88")


if __name__ == "__main__":
    main()
