#!/usr/bin/env python3
"""Quickstart: top-k keyword search over a small probabilistic XML doc.

Builds the movie fragment from the README, runs the same query through
all three algorithms (PrStack, EagerTopK, and the exponential
possible-world oracle) and shows they agree.

Run:  python examples/quickstart.py
"""

from repro import Algorithm, parse_pxml, topk_search

DOCUMENT = """
<movies>
  <movie>
    <title>paris texas</title>
    <mux>
      <year prob="0.8">1984</year>
      <year prob="0.2">1985</year>
    </mux>
    <ind>
      <award prob="0.6">palme d'or winner</award>
    </ind>
  </movie>
  <movie>
    <title>texas chainsaw massacre</title>
    <year>1974</year>
  </movie>
</movies>
"""


def main() -> None:
    document = parse_pxml(DOCUMENT)
    print(f"p-document with {len(document)} nodes, "
          f"{document.theoretical_world_count()} raw possible worlds\n")

    query = ["texas", "1984"]
    print(f"query: {query}, k=3")
    for algorithm in Algorithm:
        outcome = topk_search(document, query, k=3, algorithm=algorithm)
        print(f"\n  {algorithm.value}:")
        for rank, result in enumerate(outcome, start=1):
            print(f"    {rank}. <{result.label}> at {result.code} "
                  f"with Pr_slca = {result.probability:.4f}")

    # The first movie is the answer only when its year resolves to
    # 1984 (probability 0.8); the second never matches "1984".
    outcome = topk_search(document, query, k=3)
    assert outcome.results[0].probability == 0.8
    print("\nall algorithms agree; the 0.8 reflects the MUX choice "
          "of <year>1984</year>")


if __name__ == "__main__":
    main()
