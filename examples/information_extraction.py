#!/usr/bin/env python3
"""Information-extraction scenario with an exact possible-world check.

An extractor pulled structured records out of web text with confidence
scores: some fields are simply uncertain (IND children weighted by the
extractor's confidence), others are ambiguous between alternatives a
disambiguator scored (MUX children).  This example builds the resulting
p-document, enumerates its possible worlds exactly, and shows that the
direct PrStack/EagerTopK computation matches the world-by-world answer
— the paper's Equation 1 versus its Section III computation, live.

Run:  python examples/information_extraction.py
"""

from repro import (DocumentBuilder, enumerate_possible_worlds,
                   topk_search, validate_document)
from repro.slca.deterministic import slca_of_world


def build_extracted_document():
    builder = DocumentBuilder("extractions")
    # Record 1: a conference mention; the year was ambiguous.
    with builder.element("mention"):
        builder.leaf("venue", text="icde conference")
        with builder.mux():
            builder.leaf("year", text="2010", prob=0.55)
            builder.leaf("year", text="2011", prob=0.45)
        with builder.ind():
            builder.leaf("location", text="hannover germany", prob=0.7)
    # Record 2: a person mention; affiliation extraction was shaky.
    with builder.element("mention"):
        builder.leaf("person", text="jianxin li")
        with builder.ind():
            builder.leaf("affiliation", text="swinburne university",
                         prob=0.8)
            builder.leaf("topic", text="probabilistic xml keyword",
                         prob=0.6)
    # Record 3: a low-confidence duplicate of record 1.
    with builder.ind():
        with builder.element("mention", prob=0.3):
            builder.leaf("venue", text="icde")
            builder.leaf("year", text="2011")
    return builder.build()


def oracle_probability(document, keywords, terms_k):
    """Equation 1 by brute force: sum world probabilities per SLCA."""
    from repro.index.tokenizer import normalize_query
    terms = normalize_query(keywords)
    totals = {}
    for world in enumerate_possible_worlds(document):
        for node in slca_of_world(world.root, terms):
            totals[node.source_id] = (totals.get(node.source_id, 0.0)
                                      + world.probability)
    ranked = sorted(totals.items(), key=lambda item: -item[1])
    return ranked[:terms_k]


def main() -> None:
    document = build_extracted_document()
    validate_document(document)
    worlds = enumerate_possible_worlds(document)
    print(f"extraction p-document: {len(document)} nodes, "
          f"{len(worlds)} distinct possible worlds "
          f"(probabilities sum to "
          f"{sum(w.probability for w in worlds):.6f})\n")

    for keywords in (["icde", "2011"], ["li", "probabilistic"],
                     ["icde", "hannover"]):
        outcome = topk_search(document, keywords, k=3)
        oracle = oracle_probability(document, keywords, 3)
        print(f"query {keywords}")
        for result, (source_id, probability) in zip(outcome, oracle):
            print(f"   direct: <{result.label}> "
                  f"Pr = {result.probability:.4f}   "
                  f"oracle node #{source_id} Pr = {probability:.4f}")
            assert abs(result.probability - probability) < 1e-9
        print("   (direct computation == possible-world Equation 1)\n")


if __name__ == "__main__":
    main()
