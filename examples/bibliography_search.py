#!/usr/bin/env python3
"""Bibliography search: the paper's DBLP workload in miniature.

Generates a DBLP-like corpus, injects distributional nodes the way the
paper's experiments do (Section V-A), and runs the Table III D-queries
with both algorithms, printing the response times and the EagerTopK
pruning counters — a minimal, runnable version of Figure 4(e).

Run:  python examples/bibliography_search.py
"""

import time

from repro import Database, topk_search
from repro.datagen import (generate_dblp, make_probabilistic,
                           queries_for_dataset, query_keywords)


def main() -> None:
    print("building a miniature DBLP-like p-document ...")
    deterministic = generate_dblp(publications=6000, seed=20110101)
    probabilistic = make_probabilistic(deterministic,
                                       distributional_ratio=0.15,
                                       seed=673)
    database = Database.from_document(probabilistic)
    print(f"  {len(probabilistic)} nodes, "
          f"{len(database.index)} distinct terms\n")

    header = (f"{'query':<6} {'keywords':<34} {'prstack':>9} "
              f"{'eager':>9} {'speedup':>8}   pruning")
    print(header)
    print("-" * len(header))
    for query_id in queries_for_dataset("dblp"):
        keywords = query_keywords(query_id)

        started = time.perf_counter()
        stack = topk_search(database, keywords, 10, "prstack")
        stack_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        eager = topk_search(database, keywords, 10, "eager")
        eager_ms = (time.perf_counter() - started) * 1000

        assert [str(r.code) for r in stack] == \
            [str(r.code) for r in eager]
        stats = eager.stats
        pruning = (f"seeds={stats['seeds']} "
                   f"consumed={stats['entries_consumed']}"
                   f"/{stats['match_entries']}")
        print(f"{query_id:<6} {', '.join(keywords):<34} "
              f"{stack_ms:>7.1f}ms {eager_ms:>7.1f}ms "
              f"{stack_ms / max(eager_ms, 0.001):>7.1f}x   {pruning}")

    print("\ntop answers for D2 (xml, keyword, query):")
    for result in topk_search(database, query_keywords("D2"), 5):
        title = result.node.text or ""
        print(f"  Pr={result.probability:.3f}  <{result.label}> "
              f"{title[:60]}")


if __name__ == "__main__":
    main()
