"""Tests for the PrXML{exp} model extension."""

import random

import pytest

from repro import (Database, DocumentBuilder, NodeType, PNode, parse_pxml,
                   serialize_pxml, topk_search, validate_document)
from repro.exceptions import ModelError, ParseError
from repro.prxml.possible_worlds import enumerate_possible_worlds
from tests.conftest import random_pdoc


def exp_doc():
    """root -> EXP{a(k1), b(k2)} with P({a,b})=0.4, P({a})=0.3,
    residue 0.3."""
    builder = DocumentBuilder("root")
    with builder.exp([((1, 2), 0.4), ((1,), 0.3)]):
        builder.leaf("a", text="k1")
        builder.leaf("b", text="k2")
    return builder.build()


class TestModel:
    def test_marginals_installed(self):
        document = exp_doc()
        exp = document.find_first(
            lambda node: node.node_type is NodeType.EXP)
        a, b = exp.children
        assert a.edge_prob == pytest.approx(0.7)   # in both subsets
        assert b.edge_prob == pytest.approx(0.4)   # in {a, b} only

    def test_validation_passes(self):
        validate_document(exp_doc())

    def test_set_subsets_rejects_bad_input(self):
        exp = PNode("EXP", NodeType.EXP)
        exp.add_child(PNode("a"))
        with pytest.raises(ModelError, match="missing children"):
            exp.set_exp_subsets([((1, 2), 0.5)])
        with pytest.raises(ModelError, match="outside"):
            exp.set_exp_subsets([((1,), 1.5)])
        with pytest.raises(ModelError, match="duplicate"):
            exp.set_exp_subsets([((1,), 0.3), ((1,), 0.3)])

    def test_overweight_distribution_rejected(self):
        exp = PNode("EXP", NodeType.EXP)
        exp.add_child(PNode("a"))
        exp.add_child(PNode("b"))
        with pytest.raises(ModelError, match="sum"):
            exp.set_exp_subsets([((1,), 0.7), ((2,), 0.6)])

    def test_set_subsets_on_non_exp_rejected(self):
        node = PNode("IND", NodeType.IND)
        with pytest.raises(ModelError):
            node.set_exp_subsets([((1,), 0.5)])

    def test_validation_detects_marginal_drift(self):
        document = exp_doc()
        exp = document.find_first(
            lambda node: node.node_type is NodeType.EXP)
        exp.children[0].edge_prob = 0.9  # break the invariant
        with pytest.raises(ModelError, match="marginal"):
            validate_document(document)

    def test_copy_preserves_subsets(self):
        twin = exp_doc().copy()
        exp = twin.find_first(
            lambda node: node.node_type is NodeType.EXP)
        assert exp.exp_subsets == [((1, 2), 0.4), ((1,), 0.3)]
        validate_document(twin)


class TestPossibleWorlds:
    def test_world_distribution(self):
        worlds = enumerate_possible_worlds(exp_doc())
        by_size = sorted((len(w.node_ids), round(w.probability, 6))
                         for w in worlds)
        # {root}, {root, a}, {root, a, b}
        assert by_size == [(1, 0.3), (2, 0.3), (3, 0.4)]

    def test_correlation_differs_from_ind_marginals(self):
        """The subset distribution is *not* the product of marginals:
        P(root covers both) = 0.4, not 0.7 * 0.4 = 0.28."""
        outcome = topk_search(exp_doc(), ["k1", "k2"], 3, "prstack")
        assert outcome.results[0].probability == pytest.approx(0.4)


class TestSearchAlgorithms:
    def test_all_algorithms_agree_on_exp_doc(self):
        document = exp_doc()
        reference = None
        for algorithm in ("possible_worlds", "prstack", "eager"):
            outcome = topk_search(document, ["k1", "k2"], 5, algorithm)
            key = [(str(r.code), round(r.probability, 10))
                   for r in outcome]
            reference = key if reference is None else reference
            assert key == reference, algorithm

    @pytest.mark.parametrize("seed", range(40))
    def test_random_exp_documents_match_oracle(self, seed):
        rng = random.Random(seed * 7919 + 3)
        document = random_pdoc(rng, max_nodes=16, with_exp=True)
        if document.theoretical_world_count() > 50_000:
            pytest.skip("world space too large")
        database = Database.from_document(document)
        for keywords in (["k1", "k2"], ["k1"]):
            oracle = topk_search(database, keywords, 10,
                                 "possible_worlds")
            stack = topk_search(database, keywords, 10, "prstack")
            eager = topk_search(database, keywords, 10, "eager")
            assert stack.probabilities() == pytest.approx(
                oracle.probabilities(), abs=1e-7), (seed, keywords)
            assert [(str(r.code), round(r.probability, 9))
                    for r in eager] == \
                [(str(r.code), round(r.probability, 9))
                 for r in stack], (seed, keywords)


class TestTextFormat:
    def test_round_trip(self):
        document = exp_doc()
        again = parse_pxml(serialize_pxml(document))
        validate_document(again)
        exp = again.find_first(
            lambda node: node.node_type is NodeType.EXP)
        assert exp.exp_subsets == [((1, 2), 0.4), ((1,), 0.3)]

    def test_missing_subsets_attribute(self):
        with pytest.raises(ParseError, match="subsets"):
            parse_pxml("<a><exp><b/></exp></a>")

    def test_bad_subset_entry(self):
        with pytest.raises(ParseError, match="subset entry"):
            parse_pxml('<a><exp subsets="x:0.5"><b/></exp></a>')

    def test_overweight_distribution_rejected(self):
        with pytest.raises(ParseError, match="distribution"):
            parse_pxml('<a><exp subsets="1:0.7 1+1:0.6"><b/></exp></a>')


class TestDatagen:
    def test_exp_injection(self):
        from repro.datagen import generate_dblp, make_probabilistic
        base = generate_dblp(publications=300, seed=9)
        prob = make_probabilistic(base, exp_fraction=0.3,
                                  mux_fraction=0.3, seed=9)
        validate_document(prob)
        kinds = [node.node_type for node in prob]
        assert kinds.count(NodeType.EXP) > 0
        database = Database.from_document(prob)
        stack = topk_search(database, ["query", "xml"], 10, "prstack")
        eager = topk_search(database, ["query", "xml"], 10, "eager")
        assert [(str(r.code), round(r.probability, 9)) for r in stack] \
            == [(str(r.code), round(r.probability, 9)) for r in eager]

    def test_invalid_fractions(self):
        from repro.datagen import generate_dblp, make_probabilistic
        base = generate_dblp(publications=10, seed=9)
        with pytest.raises(ModelError):
            make_probabilistic(base, mux_fraction=0.8, exp_fraction=0.4)
