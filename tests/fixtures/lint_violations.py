"""Deliberately rule-violating module for lint tests and the CI gate.

Each function below trips exactly the rule named in its docstring;
``repro lint`` over this file must exit non-zero.  Never "fix" this
file — tests/test_linter.py and the CI negative check pin its findings.
"""

import time


def compare_probability(probability):
    """R001: float equality on a probability-named expression."""
    return probability == 1.0


def measure():
    """R002: raw clock call outside repro.obs."""
    start = time.perf_counter()
    return time.perf_counter() - start


def combine_probability(left_prob, right_prob):
    """R003: unguarded probability arithmetic on a public return."""
    return left_prob * right_prob


def accumulate(values=[]):
    """R005: mutable default argument."""
    values.append(1)
    return values


def swallow():
    """R006: silently swallowed exception."""
    try:
        return accumulate()
    except ValueError:
        pass
