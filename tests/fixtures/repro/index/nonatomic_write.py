"""R007 fixture: this path contains ``repro/index/`` on purpose, so
the non-atomic-write rule treats it as storage-critical code.  The
flagged half writes files in place; the clean half shows every shape
the rule must *not* flag (reads, the blessed helper, a reasoned
suppression)."""

import os


def flagged_truncating_open(path, text):
    with open(path, "w") as handle:  # R007: in-place truncate
        handle.write(text)


def flagged_append_open(path, text):
    handle = open(path, mode="ab")  # R007: in-place append
    handle.write(text)
    handle.close()


def flagged_convenience_writer(path, text):
    path.write_text(text)  # R007: Path.write_text truncates in place


def flagged_os_open(path):
    return os.open(path, os.O_WRONLY | os.O_CREAT)  # R007


def clean_read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def clean_default_mode_read(path):
    return open(path).read()


def clean_variable_mode(path, mode):
    # A non-literal mode cannot be judged statically; not flagged.
    return open(path, mode)


def clean_os_open_readonly(path):
    return os.open(path, os.O_RDONLY)


def _atomic_write(path, text):
    # The blessed helper itself: in-place writing is its whole job.
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def suppressed_write(path, text):
    with open(path, "w") as handle:  # repro: ignore[R007] scratch file
        handle.write(text)
