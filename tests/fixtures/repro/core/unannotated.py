"""R004 fixture: this path contains ``repro/core/`` on purpose, so the
annotation rule treats it as engine code; the public function below
lacks type annotations and must produce an R004 finding."""


def unannotated_public_function(value):
    return value
