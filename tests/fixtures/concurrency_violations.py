"""Negative fixtures for the concurrency rules R008-R012.

Each class/function below violates exactly the discipline its rule
enforces, plus one suppressed occurrence per rule proving the
``# repro: ignore[R00x]`` escape hatch works.  This file is linted by
the test suite and the CI negative-fixture gate — it must always FAIL
``repro lint``.
"""

import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor


class UnguardedCounters:
    """R008: readers race the writers that hold the lock."""

    def __init__(self):
        self.hits = 0
        self.log = []  # repro: guarded-by[_lock]
        self._lock = threading.Lock()

    def record(self):
        with self._lock:
            self.hits += 1
            self.log.append("hit")

    def peek(self):
        return self.hits  # fires R008: inferred guard not held

    def tail(self):
        return self.log[-1]  # fires R008: declared guard not held

    def peek_suppressed(self):
        return self.hits  # repro: ignore[R008] monitoring approximation


class DeadlockShape:
    """R009: the same two locks nest in both directions."""

    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forwards(self):
        with self._a:
            with self._b:
                pass

    def backwards(self):
        with self._b:
            with self._a:  # fires R009: closes the a/b order cycle
                pass


class SuppressedDeadlockShape:
    """R009 suppression: documented single-threaded helper."""

    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forwards(self):
        with self._a:
            with self._b:
                pass

    def backwards(self):
        with self._b:
            with self._a:  # repro: ignore[R009] init-time only, single thread
                pass


class SlowCriticalSection:
    """R010: the lock is held across blocking work."""

    def __init__(self):
        self._lock = threading.Lock()

    def nap_while_holding(self):
        with self._lock:
            time.sleep(0.1)  # fires R010: sleep under the lock

    def nap_suppressed(self):
        with self._lock:
            time.sleep(0.0)  # repro: ignore[R010] test pacing shim


_handler_lock = threading.Lock()


def _locking_handler(signum, frame):
    with _handler_lock:  # fires R011: lock in a signal handler
        pass


def _quiet_handler(signum, frame):
    pass


def install_handlers():
    signal.signal(signal.SIGUSR2, _locking_handler)  # fires R011: raw registration
    signal.signal(signal.SIGHUP, _quiet_handler)  # repro: ignore[R011] restored in teardown


def _square(value):
    return value * value


def ship_unsafe_payloads(collector):
    lock = threading.Lock()
    with ProcessPoolExecutor(max_workers=1) as pool:
        pool.submit(_square, lock)  # fires R012: a lock crosses the fork
        pool.submit(_square, collector)  # repro: ignore[R012] fixture peer
        return pool.submit(lambda v: v, 2)  # fires R012: lambda target
