"""Unit tests for the bounded top-k result heap."""

import pytest

from repro import DeweyCode
from repro.core.heap import TopKHeap
from repro.exceptions import QueryError


def code(text):
    return DeweyCode.parse(text)


class TestTopKHeap:
    def test_k_must_be_positive(self):
        with pytest.raises(QueryError):
            TopKHeap(0)
        with pytest.raises(QueryError):
            TopKHeap(-3)

    def test_threshold_zero_until_full(self):
        heap = TopKHeap(2)
        assert heap.threshold == 0.0
        heap.offer(code("1.1"), 0.5)
        assert heap.threshold == 0.0
        heap.offer(code("1.2"), 0.4)
        assert heap.threshold == 0.4

    def test_rejects_zero_probability(self):
        heap = TopKHeap(2)
        assert not heap.offer(code("1.1"), 0.0)
        assert not heap.offer(code("1.2"), -1.0)
        assert len(heap) == 0

    def test_keeps_k_best(self):
        heap = TopKHeap(2)
        for index, probability in enumerate((0.1, 0.9, 0.5, 0.7)):
            heap.offer(code(f"1.{index + 1}"), probability)
        results = heap.results()
        assert [r.probability for r in results] == [0.9, 0.7]
        assert heap.threshold == 0.7

    def test_rejects_below_threshold(self):
        heap = TopKHeap(1)
        heap.offer(code("1.1"), 0.9)
        assert not heap.offer(code("1.2"), 0.5)
        assert len(heap) == 1

    def test_tie_at_boundary_prefers_document_order(self):
        heap = TopKHeap(1)
        assert heap.offer(code("1.5"), 0.5)
        # Equal probability, earlier document order: displaces.
        assert heap.offer(code("1.2"), 0.5)
        assert [str(r.code) for r in heap.results()] == ["1.2"]
        # Equal probability, later document order: rejected.
        assert not heap.offer(code("1.9"), 0.5)

    def test_tie_order_insensitive_to_arrival(self):
        offers = [("1.5", 0.5), ("1.2", 0.5), ("1.9", 0.5), ("1.1", 0.4)]
        outcomes = []
        for permutation in ([0, 1, 2, 3], [2, 1, 0, 3], [3, 2, 1, 0],
                            [1, 3, 0, 2]):
            heap = TopKHeap(2)
            for index in permutation:
                text, probability = offers[index]
                heap.offer(code(text), probability)
            outcomes.append([(str(r.code), r.probability)
                             for r in heap.results()])
        assert all(outcome == outcomes[0] for outcome in outcomes)
        assert outcomes[0] == [("1.2", 0.5), ("1.5", 0.5)]

    def test_reoffer_keeps_higher(self):
        heap = TopKHeap(2)
        heap.offer(code("1.1"), 0.3)
        assert not heap.offer(code("1.1"), 0.2)
        assert heap.offer(code("1.1"), 0.6)
        results = heap.results()
        assert len(results) == 1
        assert results[0].probability == 0.6

    def test_results_sorted(self):
        heap = TopKHeap(5)
        for index, probability in enumerate((0.2, 0.8, 0.5)):
            heap.offer(code(f"1.{index + 1}"), probability)
        assert [r.probability for r in heap.results()] == [0.8, 0.5, 0.2]

    def test_fewer_than_k_results(self):
        heap = TopKHeap(10)
        heap.offer(code("1.1"), 0.4)
        assert len(heap.results()) == 1
