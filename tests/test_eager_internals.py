"""Unit tests for EagerTopK's internal data structures."""

import pytest

from repro import DeweyCode, NodeType
from repro.core.distribution import DistTable
from repro.core.eager import _Region, _RegionRegistry


def region(text, masks=None, lost=0.0, link=None):
    code = DeweyCode.parse(text)
    link = link or tuple(1.0 for _ in range(len(code)))
    table = DistTable(dict(masks or {}), lost)
    return _Region(code, link, table, full_mask=0b11)


class TestRegionRegistry:
    def test_document_order_maintained(self):
        registry = _RegionRegistry()
        for text in ("1.3", "1.1", "1.2"):
            registry.add(region(text))
        root = DeweyCode.parse("1")
        codes = [str(r.code) for r in registry.under(root)]
        assert codes == ["1.1", "1.2", "1.3"]

    def test_add_collapses_covered_regions(self):
        registry = _RegionRegistry()
        registry.add(region("1.2.1"))
        registry.add(region("1.2.3"))
        registry.add(region("1.3"))
        assert len(registry) == 3
        registry.add(region("1.2"))  # covers the first two
        assert len(registry) == 2
        codes = [str(r.code) for r in registry.under(DeweyCode.parse("1"))]
        assert codes == ["1.2", "1.3"]

    def test_under_is_subtree_scoped(self):
        registry = _RegionRegistry()
        registry.add(region("1.2.1"))
        registry.add(region("1.20"))
        inside = registry.under(DeweyCode.parse("1.2"))
        assert [str(r.code) for r in inside] == ["1.2.1"]

    def test_under_includes_self(self):
        registry = _RegionRegistry()
        registry.add(region("1.2"))
        assert [str(r.code)
                for r in registry.under(DeweyCode.parse("1.2"))] == ["1.2"]


class TestRegionBounds:
    def test_coverage_numbers(self):
        entry = region("1.2", masks={0b11: 0.3, 0b01: 0.7}, lost=0.0)
        assert entry.harvested == 0.0
        assert entry.all_cover == pytest.approx(0.3)

    def test_bound_for_uses_harvested_without_ordinary_between(self):
        """Region directly under the candidate: only ordinary-node
        coverage (lost) excludes the path."""
        code = DeweyCode(
            (1, 1), (NodeType.ORDINARY, NodeType.MUX))
        table = DistTable({0b11: 0.4, 0b00: 0.3}, lost=0.3)
        entry = _Region(code, (1.0, 1.0), table, 0b11)
        bound = entry.bound_for(DeweyCode.parse("1"), 1.0)
        assert bound.cover_given_candidate == pytest.approx(0.3)

    def test_bound_for_upgrades_with_ordinary_between(self):
        """An ordinary node between region and candidate harvests the
        surviving full mass, so total coverage excludes the path."""
        code = DeweyCode(
            (1, 1, 1), (NodeType.ORDINARY, NodeType.ORDINARY,
                        NodeType.MUX))
        table = DistTable({0b11: 0.4, 0b00: 0.3}, lost=0.3)
        entry = _Region(code, (1.0, 1.0, 1.0), table, 0b11)
        bound = entry.bound_for(DeweyCode.parse("1"), 1.0)
        assert bound.cover_given_candidate == pytest.approx(0.7)

    def test_bound_scales_with_conditional_path(self):
        code = DeweyCode((1, 2), (NodeType.ORDINARY, NodeType.ORDINARY))
        table = DistTable({0b00: 0.5}, lost=0.5)
        entry = _Region(code, (1.0, 0.4), table, 0b11)
        bound = entry.bound_for(DeweyCode.parse("1"), 1.0)
        assert bound.cover_given_candidate == pytest.approx(0.5 * 0.4)
        assert bound.group == 2
