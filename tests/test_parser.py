"""Unit tests for the p-document XML parser and serializer."""

import pytest

from repro import NodeType, parse_pxml, parse_pxml_file, serialize_pxml
from repro import write_pxml_file
from repro.exceptions import ParseError
from repro.prxml.parser import parse_pxml_salvage

SAMPLE = """
<movies>
  <movie>
    <title>paris texas</title>
    <mux>
      <year prob="0.8">1984</year>
      <year prob="0.2">1985</year>
    </mux>
    <ind prob="0.9">
      <award prob="0.5">palme d'or</award>
    </ind>
  </movie>
</movies>
"""


class TestParse:
    def test_basic_structure(self):
        doc = parse_pxml(SAMPLE)
        labels = [node.label for node in doc]
        assert labels == ["movies", "movie", "title", "MUX", "year",
                          "year", "IND", "award"]

    def test_node_types_from_reserved_tags(self):
        doc = parse_pxml(SAMPLE)
        kinds = [node.node_type for node in doc]
        assert kinds[3] is NodeType.MUX
        assert kinds[6] is NodeType.IND

    def test_probabilities(self):
        doc = parse_pxml(SAMPLE)
        years = doc.find_by_label("year")
        assert [year.edge_prob for year in years] == [0.8, 0.2]
        ind = doc.find_first(lambda node: node.node_type is NodeType.IND)
        assert ind.edge_prob == 0.9
        assert ind.children[0].edge_prob == 0.5

    def test_text_content(self):
        doc = parse_pxml(SAMPLE)
        assert doc.find_by_label("title")[0].text == "paris texas"

    def test_mixed_content_gathers_tails(self):
        doc = parse_pxml("<a>head<b>inner</b>tail</a>")
        assert doc.root.text == "head tail"
        assert doc.root.children[0].text == "inner"

    def test_malformed_xml(self):
        with pytest.raises(ParseError, match="malformed"):
            parse_pxml("<a><b></a>")

    def test_bad_probability_value(self):
        with pytest.raises(ParseError, match="not a number"):
            parse_pxml('<a><b prob="high"/></a>')

    def test_probability_out_of_range(self):
        with pytest.raises(ParseError, match="outside"):
            parse_pxml('<a><b prob="1.5"/></a>')
        with pytest.raises(ParseError, match="outside"):
            parse_pxml('<a><b prob="0"/></a>')

    def test_distributional_root_rejected(self):
        with pytest.raises(ParseError, match="root"):
            parse_pxml('<ind><a/></ind>')

    def test_root_with_probability_rejected(self):
        with pytest.raises(ParseError, match="root"):
            parse_pxml('<a prob="0.5"><b/></a>')

    def test_distributional_with_text_rejected(self):
        with pytest.raises(ParseError, match="text"):
            parse_pxml('<a><mux>boom<b prob="0.5"/></mux></a>')


class TestDiagnostics:
    """Every rejection must carry a ``path:line:column`` position."""

    def test_malformed_prob_names_file_line_and_column(self):
        text = ('<movies>\n'
                '  <movie>\n'
                '    <year prob="bogus">1984</year>\n'
                '  </movie>\n'
                '</movies>\n')
        with pytest.raises(ParseError,
                           match=r"catalogue\.pxml:3:5: .*not a number"):
            parse_pxml(text, path="catalogue.pxml")

    def test_mis_nested_mux_text_names_position(self):
        text = ('<a>\n'
                '  <mux>boom\n'
                '    <b prob="0.5"/>\n'
                '  </mux>\n'
                '</a>\n')
        with pytest.raises(ParseError, match=r":2:3: .*text"):
            parse_pxml(text, path="doc.pxml")

    def test_out_of_range_prob_names_position(self):
        with pytest.raises(ParseError, match=r"<string>:1:4: "):
            parse_pxml('<a><b prob="1.5"/></a>')

    def test_parse_file_uses_real_path(self, tmp_path):
        target = tmp_path / "broken.pxml"
        target.write_text('<a>\n<b prob="nope"/>\n</a>\n')
        with pytest.raises(ParseError) as info:
            parse_pxml_file(target)
        assert str(target) in str(info.value)
        assert ":2:1:" in str(info.value)

    def test_malformed_xml_names_position(self):
        with pytest.raises(ParseError, match="malformed"):
            parse_pxml("<a>\n<b></a>\n", path="x.pxml")


class TestSalvage:
    def test_salvage_drops_only_malformed_subtrees(self):
        text = ('<catalogue>\n'
                '  <movie>\n'
                '    <title>good</title>\n'
                '  </movie>\n'
                '  <movie prob="broken">\n'
                '    <title>bad</title>\n'
                '  </movie>\n'
                '</catalogue>\n')
        document, drops = parse_pxml_salvage(text, path="c.pxml")
        labels = [node.label for node in document]
        assert labels == ["catalogue", "movie", "title"]
        assert len(drops) == 1
        drop = drops[0]
        assert drop.position.line == 5
        assert "c.pxml:5:" in drop.describe()
        assert "broken" in drop.reason
        assert "<title>bad</title>" in drop.xml_text

    def test_salvage_of_clean_document_drops_nothing(self):
        document, drops = parse_pxml_salvage(SAMPLE)
        assert drops == []
        assert len(document) == len(parse_pxml(SAMPLE))

    def test_salvage_cannot_save_a_broken_root(self):
        with pytest.raises(ParseError, match="root"):
            parse_pxml_salvage('<ind><a prob="0.5"/></ind>')

    def test_salvage_on_unparseable_xml_raises(self):
        with pytest.raises(ParseError, match="malformed"):
            parse_pxml_salvage("<a><b></a>")


class TestSerialize:
    def test_round_trip(self):
        doc = parse_pxml(SAMPLE)
        text = serialize_pxml(doc)
        again = parse_pxml(text)
        assert [n.label for n in again] == [n.label for n in doc]
        assert [n.node_type for n in again] == [n.node_type for n in doc]
        assert [n.edge_prob for n in again] == [n.edge_prob for n in doc]
        assert [n.text for n in again] == [n.text for n in doc]

    def test_round_trip_figure1(self, figure1_doc):
        again = parse_pxml(serialize_pxml(figure1_doc))
        assert [n.label for n in again] == [n.label for n in figure1_doc]
        assert ([n.edge_prob for n in again]
                == [n.edge_prob for n in figure1_doc])

    def test_escaping(self):
        doc = parse_pxml("<a><b>x &lt; y &amp; z</b></a>")
        assert doc.root.children[0].text == "x < y & z"
        again = parse_pxml(serialize_pxml(doc))
        assert again.root.children[0].text == "x < y & z"

    def test_file_round_trip(self, tmp_path, fragment_doc):
        path = tmp_path / "doc.pxml"
        write_pxml_file(fragment_doc, path)
        again = parse_pxml_file(path)
        assert len(again) == len(fragment_doc)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParseError, match="cannot read"):
            parse_pxml_file(tmp_path / "missing.pxml")
