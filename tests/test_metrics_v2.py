"""The repro.metrics/v2 report, cross-process metric merging and the
Prometheus exporter (satellites S1/S4 of the observability issue)."""

import pytest

from repro.core.result import SearchOutcome
from repro.obs import (MetricsCollector, build_report, build_report_v2,
                       parse_prometheus, prometheus_lines,
                       render_prometheus, validate_report,
                       workers_block)
from repro.obs.export import ExportError
from repro.obs.metrics import Histogram
from repro.obs.report import ReportError, SCHEMA_ID, SCHEMA_ID_V2
from repro.obs.spans import Span, SpanTracer


def outcome_with_metrics():
    collector = MetricsCollector()
    collector.count("engine.items_fed", 7)
    collector.observe("posting.length", 12)
    collector.observe_time("index.lookup", 0.002)
    outcome = SearchOutcome(stats={"algorithm": "eager"})
    outcome.stats["metrics"] = collector.snapshot()
    return outcome


class TestSchemaCompat:
    def test_v1_report_still_validates(self):
        report = build_report(["k1"], 3, "eager", "slca",
                              outcome_with_metrics(), 1.5)
        assert report["schema"] == SCHEMA_ID
        assert validate_report(report) is report

    def test_v2_without_blocks_is_v1_plus_tag(self):
        outcome = outcome_with_metrics()
        v1 = build_report(["k1"], 3, "eager", "slca", outcome, 1.5)
        v2 = build_report_v2(["k1"], 3, "eager", "slca", outcome, 1.5)
        assert v2.pop("schema") == SCHEMA_ID_V2
        v1.pop("schema")
        assert v1 == v2

    def test_v2_with_all_blocks_validates(self):
        tracer = SpanTracer(trace_id="t")
        with tracer.span("batch"):
            pass
        report = build_report_v2(
            ["k1"], 3, "eager", "slca", outcome_with_metrics(), 1.5,
            spans=tracer.export(),
            workers=workers_block([41, 42, 42], 3),
            resilience={"retries": 1, "query_errors": 0})
        validated = validate_report(report)
        assert validated["workers"] == {"count": 2, "pids": [41, 42],
                                        "merged_snapshots": 3}

    def test_v1_must_not_carry_v2_blocks(self):
        report = build_report(["k1"], 3, "eager", "slca",
                              outcome_with_metrics(), 1.5)
        report["workers"] = workers_block([1], 1)
        with pytest.raises(ReportError, match="must not carry"):
            validate_report(report)

    def test_v2_rejects_invalid_spans_block(self):
        report = build_report_v2(
            ["k1"], 3, "eager", "slca", outcome_with_metrics(), 1.5,
            spans=[{"span_id": "s0"}])
        with pytest.raises(ReportError, match="spans block invalid"):
            validate_report(report)

    def test_v2_rejects_malformed_workers_block(self):
        report = build_report_v2(
            ["k1"], 3, "eager", "slca", outcome_with_metrics(), 1.5,
            workers={"pids": ["not-a-pid"]})
        with pytest.raises(ReportError, match="workers.count"):
            validate_report(report)

    def test_unknown_schema_names_both_versions(self):
        report = build_report(["k1"], 3, "eager", "slca",
                              outcome_with_metrics(), 1.5)
        report["schema"] = "repro.metrics/v9"
        with pytest.raises(ReportError, match="v1.*v2"):
            validate_report(report)


class TestMerging:
    def test_histogram_absorb(self):
        left = Histogram()
        left.observe(2.0)
        left.observe(4.0)
        right = Histogram()
        right.absorb(left.count, left.total, left.minimum, left.maximum)
        right.absorb(0, 0.0, 0.0, 0.0)  # empty summary is a no-op
        assert right.count == 2
        assert right.total == 6.0
        assert right.minimum == 2.0
        assert right.maximum == 4.0

    def test_merge_collectors(self):
        left, right = MetricsCollector(), MetricsCollector()
        left.count("c", 2)
        right.count("c", 3)
        right.observe_time("t", 0.5)
        left.merge(right)
        assert left.counter("c") == 5
        assert left.timers["t"].count == 1

    def test_merge_snapshot_scales_timers_back_to_seconds(self):
        worker = MetricsCollector()
        worker.count("eager.seeds", 4)
        worker.observe_time("index.lookup", 0.25)  # snapshot -> 250 ms
        coordinator = MetricsCollector()
        coordinator.merge_snapshot(worker.snapshot())
        assert coordinator.counter("eager.seeds") == 4
        merged = coordinator.snapshot()["timers"]["index.lookup"]
        assert merged["sum"] == pytest.approx(250.0)
        assert coordinator.timers["index.lookup"].total == \
            pytest.approx(0.25)

    def test_merge_snapshot_of_empty_is_noop(self):
        collector = MetricsCollector()
        collector.merge_snapshot({})
        assert collector.snapshot()["counters"] == {}


class TestTimerSpanBridge:
    def test_time_opens_a_span_under_current(self):
        tracer = SpanTracer(trace_id="t")
        collector = MetricsCollector(tracer=tracer)
        with tracer.span("query"):
            with collector.time("index.lookup"):
                pass
        names = {s.name: s for s in tracer.finished}
        assert names["index.lookup"].parent_id == \
            names["query"].span_id
        assert collector.timers["index.lookup"].count == 1

    def test_mark_annotates_current_span(self):
        tracer = SpanTracer(trace_id="t")
        collector = MetricsCollector(tracer=tracer)
        with tracer.span("query") as span:
            collector.mark("cache.hits")
            collector.mark("cache.hits")
        assert span.attrs["cache.hits"] == 2

    def test_mark_without_tracer_is_noop(self):
        collector = MetricsCollector()
        collector.mark("cache.hits")  # must not raise or record
        assert collector.snapshot()["counters"] == {}

    def test_disabled_tracer_is_not_attached(self):
        from repro.obs.spans import NULL_TRACER
        collector = MetricsCollector(tracer=NULL_TRACER)
        assert collector.tracer is None


class TestPrometheus:
    def snapshot(self):
        collector = MetricsCollector()
        collector.count("engine.items_fed", 7)
        collector.count("service.cache.match_entries.hits", 3)
        collector.observe("posting.length", 12)
        collector.observe("posting.length", 4)
        collector.observe_time("index.lookup", 0.002)
        return collector.snapshot()

    def test_round_trip(self):
        text = render_prometheus(self.snapshot())
        samples = parse_prometheus(text)
        assert samples["repro_engine_items_fed"] == 7
        assert samples["repro_service_cache_match_entries_hits"] == 3
        assert samples["repro_posting_length_count"] == 2
        assert samples["repro_posting_length_sum"] == 16
        assert samples["repro_posting_length_min"] == 4
        assert samples["repro_posting_length_max"] == 12
        assert samples["repro_posting_length_mean"] == 8
        # timers are exported in milliseconds, suffixed _ms
        assert samples["repro_index_lookup_ms_count"] == 1
        assert samples["repro_index_lookup_ms_sum"] == \
            pytest.approx(2.0)

    def test_type_lines_declare_counters_and_gauges(self):
        lines = prometheus_lines(self.snapshot())
        assert "# TYPE repro_engine_items_fed counter" in lines
        assert "# TYPE repro_posting_length_count gauge" in lines

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsCollector().snapshot()) == ""
        assert render_prometheus({}) == ""

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ExportError, match="malformed"):
            parse_prometheus("repro_x 1 2 3\n")
        with pytest.raises(ExportError, match="non-numeric"):
            parse_prometheus("repro_x abc\n")
        with pytest.raises(ExportError, match="repeats"):
            parse_prometheus("repro_x 1\nrepro_x 2\n")

    def test_parse_skips_comments_and_blanks(self):
        assert parse_prometheus("# HELP x\n\n# TYPE x counter\n") == {}


class TestLabelsAndNonFinite:
    """Regressions for the exposition-format bugfix: label values must
    be escaped and non-finite samples spelled ``+Inf``/``-Inf``/``NaN``
    (previously ``repr(float('inf')) == 'inf'`` produced unscrapable
    output and a label value containing ``\"`` broke the line)."""

    def test_escape_label_value(self):
        from repro.obs import escape_label_value
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("plain") == "plain"

    def test_format_sample_with_labels_sorted(self):
        from repro.obs import format_sample
        line = format_sample("gen.info", 1, {"b": "2", "a": "1"})
        assert line == 'repro_gen_info{a="1",b="2"} 1'

    def test_non_finite_values_render_per_spec(self):
        from repro.obs import format_sample
        assert format_sample("x", float("inf")).endswith(" +Inf")
        assert format_sample("x", float("-inf")).endswith(" -Inf")
        assert format_sample("x", float("nan")).endswith(" NaN")

    def test_non_finite_round_trip(self):
        import math
        from repro.obs import format_sample
        text = "\n".join([format_sample("pos", float("inf")),
                          format_sample("neg", float("-inf")),
                          format_sample("nan", float("nan"))]) + "\n"
        samples = parse_prometheus(text)
        assert samples["repro_pos"] == float("inf")
        assert samples["repro_neg"] == float("-inf")
        assert math.isnan(samples["repro_nan"])

    def test_labelled_sample_round_trips_hostile_values(self):
        from repro.obs import format_sample
        hostile = 'quo"te\\slash\nnewline}brace and space'
        line = format_sample("gen.info", 1,
                             {"generation": hostile, "n": "2"})
        samples = parse_prometheus(line + "\n")
        # Canonical key: sorted labels, re-escaped exactly as rendered.
        assert samples == {line.rsplit(" ", 1)[0]: 1.0}

    def test_parse_rejects_unterminated_label_block(self):
        with pytest.raises(ExportError, match="unterminated"):
            parse_prometheus('repro_x{a="1" 1\n')

    def test_parse_rejects_malformed_label_block(self):
        with pytest.raises(ExportError, match="malformed label"):
            parse_prometheus("repro_x{nonsense} 1\n")

    def test_parse_rejects_duplicate_labelled_sample(self):
        text = 'repro_x{a="1"} 1\nrepro_x{a="1"} 2\n'
        with pytest.raises(ExportError, match="repeats"):
            parse_prometheus(text)

    def test_distinct_labels_are_distinct_samples(self):
        text = 'repro_x{q="0.5"} 1\nrepro_x{q="0.99"} 2\n'
        samples = parse_prometheus(text)
        assert samples['repro_x{q="0.5"}'] == 1
        assert samples['repro_x{q="0.99"}'] == 2

    def test_unlabelled_lines_keep_strict_two_token_contract(self):
        with pytest.raises(ExportError, match="malformed"):
            parse_prometheus("repro_x 1 1700000000\n")


class TestHistogramPercentile:
    """The locked percentile accessor (third satellite bugfix)."""

    def test_percentile_interpolates(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 100.0
        assert histogram.percentile(0.5) == pytest.approx(50.5)

    def test_percentile_rejects_out_of_range(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_reservoir_is_bounded_and_deterministic(self):
        left, right = Histogram(), Histogram()
        for value in range(20000):
            left.observe(float(value))
            right.observe(float(value))
        assert len(left._samples) < Histogram.MAX_SAMPLES
        assert left._samples == right._samples
        # Decimation keeps the percentile honest within a stride.
        assert left.percentile(0.5) == pytest.approx(10000, rel=0.01)

    def test_collector_percentile_accessor(self):
        collector = MetricsCollector()
        for value in range(10):
            collector.observe("lat", float(value))
        assert collector.percentile("lat", 0.5,
                                    kind="histograms") == 4.5
        assert collector.percentile("missing", 0.5,
                                    kind="histograms") == 0.0
        with pytest.raises(ValueError):
            collector.percentile("lat", 0.5, kind="bogus")

    def test_quantile_snapshot_and_lines(self):
        from repro.obs import quantile_lines
        collector = MetricsCollector()
        for value in range(10):
            collector.observe("lat", float(value))
        collector.observe_time("t", 0.1)
        block = collector.quantile_snapshot(qs=(0.5,))
        assert block["histograms"]["lat"]["0.5"] == 4.5
        assert block["timers"]["t"]["0.5"] == pytest.approx(100.0)
        lines = quantile_lines(block)
        assert 'repro_lat{quantile="0.5"} 4.5' in lines
        # timers keep the _ms suffix of prometheus_lines
        assert any(line.startswith('repro_t_ms{quantile="0.5"}')
                   for line in lines)
        parsed = parse_prometheus("\n".join(lines) + "\n")
        assert parsed['repro_lat{quantile="0.5"}'] == 4.5

    def test_absorb_pools_samples_for_percentiles(self):
        left, right = Histogram(), Histogram()
        for value in (1.0, 2.0):
            left.observe(value)
        for value in (3.0, 4.0):
            right.observe(value)
        right.absorb(left.count, left.total, left.minimum,
                     left.maximum, samples=left._samples)
        assert right.count == 4
        assert right.percentile(1.0) == 4.0
        assert right.percentile(0.0) == 1.0

    def test_snapshot_shape_unchanged(self):
        # The exact-equality contract in test_obs.py: percentiles are
        # a separate accessor, never new snapshot keys.
        histogram = Histogram()
        histogram.observe(2.0)
        assert set(histogram.snapshot()) == {"count", "sum", "min",
                                             "max", "mean"}
