"""Tests for the runtime invariant sanitizer (the dynamic half of
``repro.analysis``).

Three layers: direct unit tests of every check method, integration
tests proving sanitized queries behave identically to plain ones, and
corruption tests proving the sanitizer actually fires — a broken
harvest (mass drift) and shrunken EagerTopK bounds (unsound pruning)
must both raise :class:`SanitizerError` where an unsanitized run stays
silent.
"""

import pytest

from repro import DocumentBuilder, topk_search
from repro.analysis import (NULL_SANITIZER, Sanitizer, SanitizerError,
                            sanitize_from_env)
from repro.core.distribution import DistTable
from repro.core.heap import TopKHeap
from repro.encoding.dewey import DeweyCode
from repro.exceptions import ReproError
from repro.obs import MetricsCollector


def code(text: str) -> DeweyCode:
    return DeweyCode.parse(text)


class TestProbabilityCheck:
    def test_in_range_passes(self):
        sanitizer = Sanitizer()
        for value in (0.0, 0.5, 1.0, 1.0 + 1e-9, -1e-9):
            sanitizer.check_probability(value, "test")
        assert sanitizer.checks == 5

    @pytest.mark.parametrize("value", [1.5, -0.2, 2.0])
    def test_out_of_range_raises(self, value):
        with pytest.raises(SanitizerError, match="outside"):
            Sanitizer().check_probability(value, "test")

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ReproError, match="epsilon"):
            Sanitizer(epsilon=-1.0)


class TestTableCheck:
    def test_valid_tables_pass(self):
        sanitizer = Sanitizer()
        sanitizer.check_table(DistTable.unit(), "unit")
        sanitizer.check_table(DistTable({0: 0.3, 1: 0.5}, lost=0.2),
                              "mixed")

    def test_mass_drift_raises(self):
        with pytest.raises(SanitizerError, match="table mass"):
            Sanitizer().check_table(DistTable({0: 0.4}, lost=0.2), "bad")

    def test_out_of_range_entry_raises(self):
        with pytest.raises(SanitizerError, match="outside"):
            Sanitizer().check_table(DistTable({1: 1.5}, lost=-0.5), "bad")


class TestMuxAndOrderChecks:
    def test_mux_mass_within_one_passes(self):
        Sanitizer().check_mux_mass(0.95, "mux")

    def test_mux_mass_above_one_raises(self):
        with pytest.raises(SanitizerError, match="sum to"):
            Sanitizer().check_mux_mass(1.5, "mux")

    def test_negative_mux_mass_raises(self):
        with pytest.raises(SanitizerError, match="negative"):
            Sanitizer().check_mux_mass(-0.5, "mux")

    def test_increasing_order_passes(self):
        sanitizer = Sanitizer()
        sanitizer.check_order(None, code("1.2"))
        sanitizer.check_order(code("1.2"), code("1.3"))

    def test_non_increasing_order_raises(self):
        with pytest.raises(SanitizerError, match="document-order"):
            Sanitizer().check_order(code("1.3"), code("1.2"))
        with pytest.raises(SanitizerError, match="document-order"):
            Sanitizer().check_order(code("1.2"), code("1.2"))


class TestEmissionAndHeapChecks:
    def test_emission_within_path_passes(self):
        Sanitizer().check_emission(code("1.2"), 0.3, 0.5)

    def test_emission_above_path_raises(self):
        with pytest.raises(SanitizerError, match="exceeds its path"):
            Sanitizer().check_emission(code("1.2"), 0.6, 0.5)

    def test_heap_property_violation_raises(self):
        with pytest.raises(SanitizerError, match="heap invariant"):
            Sanitizer().check_heap([0.5, 0.1], {}, 3)

    def test_oversized_heap_raises(self):
        with pytest.raises(SanitizerError, match="holds 2"):
            Sanitizer().check_heap([], {"a": 0.1, "b": 0.2}, 1)

    def test_heap_offers_are_checked(self):
        heap = TopKHeap(2, sanitizer=Sanitizer())
        assert heap.offer(code("1.1"), 0.5)
        with pytest.raises(SanitizerError):
            heap.offer(code("1.2"), 1.5)


class TestBoundBookkeeping:
    def test_record_bound_rejects_node_above_path(self):
        with pytest.raises(SanitizerError, match="exceeds its path"):
            Sanitizer().record_bound(code("1.2"), 0.3, 0.4)

    def test_verify_bounds_accepts_dominating_bounds(self):
        sanitizer = Sanitizer()
        sanitizer.record_bound(code("1.2"), 0.8, 0.6)
        sanitizer.verify_bounds({code("1.2"): 0.5, code("1"): 0.2})

    def test_verify_bounds_catches_unsound_node_bound(self):
        sanitizer = Sanitizer()
        sanitizer.record_bound(code("1.2"), 0.8, 0.1)
        with pytest.raises(SanitizerError, match="Properties 4-5"):
            sanitizer.verify_bounds({code("1.2"): 0.5})

    def test_verify_bounds_catches_unsound_path_bound(self):
        sanitizer = Sanitizer()
        sanitizer.record_bound(code("1.2"), 0.3, 0.1)
        with pytest.raises(SanitizerError, match="Properties 1-3"):
            sanitizer.verify_bounds({code("1"): 0.6})


class TestNullSanitizerAndEnv:
    def test_null_sanitizer_checks_nothing(self):
        NULL_SANITIZER.check_probability(42.0, "nonsense")
        NULL_SANITIZER.check_mux_mass(9.0, "nonsense")
        NULL_SANITIZER.verify_bounds({})
        assert NULL_SANITIZER.enabled is False
        assert NULL_SANITIZER.summary() == {}

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("TRUE", True),
        ("0", False), ("false", False), ("No", False), ("", False),
    ])
    def test_env_values(self, value, expected):
        assert sanitize_from_env({"REPRO_SANITIZE": value}) is expected

    def test_env_unset_is_off(self):
        assert sanitize_from_env({}) is False


class TestTraceContext:
    def test_failure_quotes_trace_tail(self):
        collector = MetricsCollector(trace=True)
        collector.event("eager.process", code="1.2", entries=3)
        sanitizer = Sanitizer(collector=collector)
        with pytest.raises(SanitizerError) as error:
            sanitizer.check_probability(2.0, "test")
        assert "trace tail" in str(error.value)
        assert "eager.process" in str(error.value)

    def test_failure_without_trace_is_plain(self):
        with pytest.raises(SanitizerError) as error:
            Sanitizer().check_probability(2.0, "test")
        assert "trace tail" not in str(error.value)


class TestSanitizedSearch:
    @pytest.mark.parametrize("algorithm", ["prstack", "eager"])
    def test_identical_results_with_summary(self, figure1_db, algorithm):
        plain = topk_search(figure1_db, ["k1", "k2"], k=5, algorithm=algorithm)
        sanitized = topk_search(figure1_db, ["k1", "k2"], k=5,
                                algorithm=algorithm, sanitize=True)
        assert sanitized.codes() == plain.codes()
        assert sanitized.probabilities() == plain.probabilities()
        summary = sanitized.stats["sanitizer"]
        assert summary["checks"] > 0
        assert summary["violations"] == 0

    def test_default_run_has_no_sanitizer_stats(self, figure1_db):
        outcome = topk_search(figure1_db, ["k1", "k2"], k=5)
        assert "sanitizer" not in outcome.stats

    def test_eager_bounds_verified_on_small_input(self, figure1_db):
        outcome = topk_search(figure1_db, ["k1", "k2"], k=1,
                              algorithm="eager", sanitize=True)
        if outcome.stats["sanitizer"]["bounds_recorded"]:
            assert outcome.stats["sanitizer_bound_check"] == "verified"

    def test_env_variable_enables_sanitizer(self, figure1_db, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        outcome = topk_search(figure1_db, ["k1", "k2"], k=3)
        assert outcome.stats["sanitizer"]["checks"] > 0
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        outcome = topk_search(figure1_db, ["k1", "k2"], k=3)
        assert "sanitizer" not in outcome.stats

    def test_random_documents_pass_sanitized(self, pdoc_factory):
        for seed in range(5):
            document = pdoc_factory(seed, max_nodes=24)
            for algorithm in ("prstack", "eager"):
                sanitized = topk_search(document, ["k1", "k2"], k=4,
                                        algorithm=algorithm, sanitize=True)
                plain = topk_search(document, ["k1", "k2"], k=4,
                                    algorithm=algorithm)
                assert sanitized.codes() == plain.codes()


def build_residual_root_doc():
    """mid (edge 0.5) answers inside its subtree; when mid is absent the
    root still covers both keywords through w/v — so the root keeps an
    exact SLCA probability of 0.5 that any sound bound must dominate."""
    builder = DocumentBuilder("root")
    with builder.ind():
        with builder.element("mid", prob=0.5):
            builder.leaf("x", text="alpha")
            builder.leaf("y", text="beta")
    builder.leaf("w", text="alpha")
    builder.leaf("v", text="beta")
    return builder.build()


class TestCorruptionIsCaught:
    def test_broken_harvest_fires_table_check(self, figure1_db,
                                              monkeypatch):
        def leaky_harvest(self, full_mask):
            # Corruption: harvested mass vanishes instead of moving to
            # ``lost``, so the table no longer sums to 1.
            return self.masks.pop(full_mask, 0.0)

        monkeypatch.setattr(DistTable, "harvest", leaky_harvest)
        # Unsanitized, the corruption passes silently...
        topk_search(figure1_db, ["k1", "k2"], k=3, algorithm="prstack")
        # ...the sanitizer is what catches it.
        with pytest.raises(SanitizerError, match="table mass"):
            topk_search(figure1_db, ["k1", "k2"], k=3,
                        algorithm="prstack", sanitize=True)

    def test_shrunken_bounds_fail_the_crosscheck(self, monkeypatch):
        import repro.core.eager as eager_module
        document = build_residual_root_doc()
        honest = eager_module.candidate_bounds

        # Honest bounds verify cleanly on this document...
        outcome = topk_search(document, ["alpha", "beta"], k=1,
                              algorithm="eager", sanitize=True)
        assert outcome.stats["sanitizer"]["bounds_recorded"] > 0
        assert outcome.stats["sanitizer_bound_check"] == "verified"

        def shrunken(node_type, path_probability, regions):
            path_bound, node_bound = honest(node_type, path_probability,
                                            regions)
            return path_bound * 0.01, node_bound * 0.01

        monkeypatch.setattr(eager_module, "candidate_bounds", shrunken)
        # ...shrunken (unsound) bounds are exposed by the exact
        # PrStack cross-check after the search.
        with pytest.raises(SanitizerError, match="unsound"):
            topk_search(document, ["alpha", "beta"], k=1,
                        algorithm="eager", sanitize=True)
