"""Unit tests for the per-figure experiment data generators."""

import pytest

from repro.bench.experiments import vary_k, vary_query, vary_size
from repro.datagen import generate_mondial, make_probabilistic
from repro.index.storage import Database


@pytest.fixture(scope="module")
def mondial_db():
    document = make_probabilistic(generate_mondial(), seed=673)
    return Database.from_document(document)


class TestExperimentGenerators:
    def test_vary_query_shape(self, mondial_db):
        data = vary_query(mondial_db, ["M1", "M2"], k=5, repeats=1)
        assert set(data) == {"M1", "M2"}
        for per_algorithm in data.values():
            assert set(per_algorithm) == {"prstack", "eager"}
            for measurement in per_algorithm.values():
                assert measurement.response_time_ms >= 0.0
                assert measurement.peak_memory_mb > 0.0

    def test_vary_query_algorithms_agree_on_results(self, mondial_db):
        data = vary_query(mondial_db, ["M1"], k=5, repeats=1)
        counts = {algorithm: measurement.result_count
                  for algorithm, measurement in data["M1"].items()}
        assert counts["prstack"] == counts["eager"]

    def test_vary_k_shape(self, mondial_db):
        data = vary_k(mondial_db, ["M1"], k_values=(2, 4), repeats=1)
        assert set(data["M1"]) == {2, 4}
        assert data["M1"][2]["prstack"].result_count <= 2
        assert data["M1"][4]["prstack"].result_count <= 4

    def test_vary_size_shape(self, mondial_db):
        data = vary_size({"s1": mondial_db, "s2": mondial_db},
                         ["M2"], k=3, repeats=1)
        assert set(data["M2"]) == {"s1", "s2"}
