"""Unit tests for keyword distribution tables (Equations 4-8).

The exact numbers of the paper's Examples 4 and 5 are pinned here.
"""

import pytest

from repro.core.distribution import DistTable
from repro.exceptions import ModelError

FULL = 0b11


def approx_table(table, expected_masks, expected_lost=0.0):
    for mask, probability in expected_masks.items():
        assert table.probability(mask) == pytest.approx(probability), mask
    assert sum(table.masks.values()) == pytest.approx(
        sum(expected_masks.values()))
    assert table.lost == pytest.approx(expected_lost)


class TestConstruction:
    def test_unit(self):
        table = DistTable.unit()
        assert table.probability(0) == 1.0
        assert table.total() == pytest.approx(1.0)

    def test_for_match(self):
        table = DistTable.for_match(0b10)
        assert table.probability(0b10) == 1.0
        assert table.probability(0) == 0.0

    def test_copy_independent(self):
        table = DistTable.for_match(1)
        twin = table.copy()
        twin.masks[1] = 0.5
        assert table.probability(1) == 1.0


class TestPromotion:
    def test_promoted_ind_adds_absence_to_zero(self):
        # Example 4: D2 {10 -> 1} with lambda 0.7 (paper's bit order
        # has k1 first; ours indexes keywords by query position, the
        # algebra is identical).
        table = DistTable.for_match(0b01).promoted_ind(0.7)
        approx_table(table, {0b01: 0.7, 0b00: 0.3})

    def test_promoted_ind_keeps_mass_one(self):
        table = DistTable({0b01: 0.4, 0b10: 0.6}).promoted_ind(0.5)
        assert table.total() == pytest.approx(1.0)

    def test_promoted_mux_no_absence_term(self):
        table = DistTable.for_match(0b01).promoted_mux(0.5)
        approx_table(table, {0b01: 0.5})
        assert table.total() == pytest.approx(0.5)

    def test_promotion_scales_lost(self):
        table = DistTable({0b01: 0.5}, lost=0.5)
        promoted = table.promoted_ind(0.8)
        assert promoted.lost == pytest.approx(0.4)
        promoted_mux = table.promoted_mux(0.8)
        assert promoted_mux.lost == pytest.approx(0.4)

    def test_bad_probability_rejected(self):
        with pytest.raises(ModelError):
            DistTable.unit().promoted_ind(0.0)
        with pytest.raises(ModelError):
            DistTable.unit().promoted_mux(1.5)


class TestIndMerge:
    def test_paper_example_4(self):
        """IND3 combines D2 (k1, 0.7) and E1 (k2, 0.9) into
        {11: 0.63, 10: 0.07, 01: 0.27, 00: 0.03}."""
        d2 = DistTable.for_match(0b01).promoted_ind(0.7)   # k1 = bit 0
        e1 = DistTable.for_match(0b10).promoted_ind(0.9)   # k2 = bit 1
        table = DistTable()
        table.merge_ind(d2)
        table.merge_ind(e1)
        approx_table(table, {0b11: 0.63, 0b01: 0.07, 0b10: 0.27,
                             0b00: 0.03})

    def test_merge_into_fresh_assigns(self):
        table = DistTable()
        table.merge_ind(DistTable.for_match(0b01))
        approx_table(table, {0b01: 1.0})

    def test_lost_mass_composes_multiplicatively(self):
        left = DistTable({0b01: 0.5}, lost=0.5)
        right = DistTable({0b10: 0.75}, lost=0.25)
        left.merge_ind(right)
        assert left.lost == pytest.approx(1 - 0.5 * 0.75)
        assert left.total() == pytest.approx(1.0)

    def test_fully_lost_table_absorbs(self):
        left = DistTable({}, lost=1.0)
        left.merge_ind(DistTable.for_match(0b01))
        assert left.masks == {}
        assert left.lost == pytest.approx(1.0)


class TestMuxMerge:
    def test_paper_example_5(self):
        """MUX2 combines D1 (k1, 0.5), IND3's table (0.1) and E2
        (k2, 0.3) into {11: 0.063, 10: 0.507, 01: 0.327, 00: 0.103}."""
        ind3 = DistTable({0b11: 0.63, 0b01: 0.07, 0b10: 0.27, 0b00: 0.03})
        table = DistTable()
        table.merge_mux(DistTable.for_match(0b01).promoted_mux(0.5))
        table.merge_mux(ind3.promoted_mux(0.1))
        table.merge_mux(DistTable.for_match(0b10).promoted_mux(0.3))
        table.add_mux_residue(0.5 + 0.1 + 0.3)
        approx_table(table, {0b11: 0.063, 0b01: 0.507, 0b10: 0.327,
                             0b00: 0.103})
        assert table.total() == pytest.approx(1.0)

    def test_residue_overflow_rejected(self):
        table = DistTable()
        with pytest.raises(ModelError):
            table.add_mux_residue(1.2)

    def test_lost_mass_adds(self):
        table = DistTable()
        table.merge_mux(DistTable({0b01: 0.2}, lost=0.3).promoted_mux(1.0))
        assert table.lost == pytest.approx(0.3)


class TestNodeLocalOps:
    def test_apply_self_mask(self):
        table = DistTable({0b01: 0.4, 0b00: 0.6})
        table.apply_self_mask(0b10)
        approx_table(table, {0b11: 0.4, 0b10: 0.6})

    def test_apply_zero_mask_noop(self):
        table = DistTable({0b01: 0.4})
        table.apply_self_mask(0)
        approx_table(table, {0b01: 0.4})

    def test_self_mask_merges_colliding_entries(self):
        table = DistTable({0b01: 0.4, 0b11: 0.1})
        table.apply_self_mask(0b10)
        approx_table(table, {0b11: 0.5})

    def test_harvest_moves_mass_to_lost(self):
        table = DistTable({0b11: 0.3, 0b01: 0.7})
        harvested = table.harvest(FULL)
        assert harvested == pytest.approx(0.3)
        assert table.probability(FULL) == 0.0
        assert table.lost == pytest.approx(0.3)
        assert table.all_probability(FULL) == pytest.approx(0.3)
        assert table.total() == pytest.approx(1.0)

    def test_harvest_empty(self):
        table = DistTable({0b01: 1.0})
        assert table.harvest(FULL) == 0.0
        assert table.lost == 0.0
