"""Unit tests for the fluent document builder."""

import pytest

from repro import DocumentBuilder, NodeType, PNode
from repro.exceptions import ModelError


class TestDocumentBuilder:
    def test_flat_leaves(self):
        builder = DocumentBuilder("root")
        builder.leaf("a", text="one")
        builder.leaf("b", text="two", prob=1.0)
        doc = builder.build()
        assert [n.label for n in doc] == ["root", "a", "b"]
        assert doc.node_by_id(1).text == "one"

    def test_nested_elements_and_distributional(self):
        builder = DocumentBuilder("root")
        with builder.element("box"):
            with builder.ind(prob=0.9):
                builder.leaf("x", prob=0.5)
            with builder.mux():
                builder.leaf("y", prob=0.4)
                builder.leaf("z", prob=0.6)
        doc = builder.build()
        kinds = [n.node_type for n in doc]
        assert kinds.count(NodeType.IND) == 1
        assert kinds.count(NodeType.MUX) == 1
        ind = doc.find_first(lambda n: n.node_type is NodeType.IND)
        assert ind.edge_prob == 0.9
        assert ind.children[0].edge_prob == 0.5

    def test_attach_external_subtree(self):
        external = PNode("sub")
        external.add_child(PNode("inner"))
        builder = DocumentBuilder("root")
        builder.node(external)
        doc = builder.build()
        assert [n.label for n in doc] == ["root", "sub", "inner"]

    def test_build_with_open_element_fails(self):
        builder = DocumentBuilder("root")
        context = builder.element("open")
        context.__enter__()
        with pytest.raises(ModelError, match="still open"):
            builder.build()

    def test_builder_single_use(self):
        builder = DocumentBuilder("root")
        builder.build()
        with pytest.raises(ModelError):
            builder.leaf("late")

    def test_cursor_restored_after_exception(self):
        builder = DocumentBuilder("root")
        with pytest.raises(RuntimeError):
            with builder.element("a"):
                raise RuntimeError("boom")
        builder.leaf("b")
        doc = builder.build()
        root_children = [child.label for child in doc.root.children]
        assert root_children == ["a", "b"]
