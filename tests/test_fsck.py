"""Tests for fsck: corruption triage, quarantine, salvage, rollback.

The safety contract under test (docs/STORAGE.md): repair either
restores a database whose answers are *exactly* the pristine ones
(rebuilt postings from a checksum-intact document, or a rollback to an
intact generation) or declares the directory unrecoverable — it never
quietly serves a document it cannot vouch for.
"""

import json
import os
import shutil

import pytest

from repro import Database, load_database, save_database, topk_search
from repro.exceptions import StorageError
from repro.index import fsck as fsck_mod
from repro.index.fsck import (KIND_BAD_MANIFEST, KIND_BAD_RECORD,
                              KIND_COUNT_MISMATCH,
                              KIND_DOCUMENT_DEGRADED, KIND_FALLBACK,
                              KIND_MALFORMED_ELEMENT, KIND_MISSING_FILE,
                              KIND_POSTING_OUT_OF_RANGE,
                              KIND_STALE_STAGING, KIND_TRUNCATED_LINE,
                              QUARANTINE_DIR, fsck_database)
from repro.index.storage import (CURRENT_FILE, DATA_FILES, MANIFEST_FILE,
                                 SNAPSHOTS_DIR, STAGING_PREFIX,
                                 current_generation, resolve_snapshot,
                                 snapshot_path)

QUERY = ["k1", "k2"]


def answers(database) -> list:
    outcome = topk_search(database, QUERY, 5, "prstack")
    return [(str(r.code), round(r.probability, 12)) for r in outcome]


@pytest.fixture
def populated(figure1_doc, tmp_path):
    """``(directory, pristine answers)`` for a one-generation database."""
    database = Database.from_document(figure1_doc)
    directory = tmp_path / "db"
    save_database(database, directory)
    return directory, answers(database)


def kinds(report) -> set:
    return {finding.kind for finding in report.findings}


def data_file(directory, name: str) -> str:
    return os.path.join(resolve_snapshot(directory)[0], name)


class TestTriage:
    def test_clean_database(self, populated):
        directory, _ = populated
        report = fsck_database(directory)
        assert report.clean and report.document_ok
        assert report.exit_code() == 0
        assert any("clean" in line for line in report.lines())

    def test_bad_postings_record(self, populated):
        directory, _ = populated
        with open(data_file(directory, "postings.jsonl"), "a") as handle:
            handle.write('{"t": "ghost"\n')
        report = fsck_database(directory)
        assert KIND_BAD_RECORD in kinds(report)
        assert report.document_ok and not report.clean
        bad = [f for f in report.findings if f.kind == KIND_BAD_RECORD]
        assert bad[0].line is not None
        assert f":{bad[0].line}:" in bad[0].describe()

    def test_truncated_final_line(self, populated):
        directory, _ = populated
        path = data_file(directory, "postings.jsonl")
        body = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(body[:-9])  # cut mid-record, no trailing \n
        report = fsck_database(directory)
        assert KIND_TRUNCATED_LINE in kinds(report)
        assert report.document_ok

    def test_posting_id_out_of_range(self, populated):
        directory, _ = populated
        path = data_file(directory, "postings.jsonl")
        lines = open(path, encoding="utf-8").readlines()
        record = json.loads(lines[0])
        record["ids"] = record["ids"] + [9999]
        lines[0] = json.dumps(record) + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        report = fsck_database(directory)
        findings = [f for f in report.findings
                    if f.kind == KIND_POSTING_OUT_OF_RANGE]
        assert findings and findings[0].line == 1
        assert "9999" in findings[0].detail

    def test_meta_count_mismatch(self, populated):
        directory, _ = populated
        path = data_file(directory, "meta.json")
        meta = json.load(open(path))
        meta["nodes"] += 3
        with open(path, "w") as handle:
            json.dump(meta, handle)
        report = fsck_database(directory)
        assert KIND_COUNT_MISMATCH in kinds(report)
        assert report.document_ok

    def test_stale_staging_directory(self, populated):
        directory, _ = populated
        litter = os.path.join(directory, SNAPSHOTS_DIR,
                              STAGING_PREFIX + "g00000099")
        os.makedirs(litter)
        report = fsck_database(directory)
        assert KIND_STALE_STAGING in kinds(report)
        assert os.path.isdir(litter)  # triage-only run keeps it
        fsck_database(directory, repair=True)
        assert not os.path.isdir(litter)

    def test_not_a_database(self, tmp_path):
        with pytest.raises(StorageError, match="not a database"):
            fsck_database(tmp_path)


class TestRepair:
    def test_postings_repair_is_exact(self, populated):
        directory, pristine = populated
        path = data_file(directory, "postings.jsonl")
        with open(path, "a") as handle:
            handle.write("{garbage\n")
        report = fsck_database(directory, repair=True)
        assert report.repaired and report.document_ok
        assert report.recovered_generation == \
            current_generation(directory)
        assert answers(load_database(directory)) == pristine

    def test_quarantine_preserves_bad_lines(self, populated):
        directory, _ = populated
        path = data_file(directory, "postings.jsonl")
        generation = current_generation(directory)
        with open(path, "a") as handle:
            handle.write("{garbage\n")
        report = fsck_database(directory, repair=True)
        quarantine = os.path.join(directory, QUARANTINE_DIR, generation)
        assert report.quarantine_dir == \
            os.path.join(directory, QUARANTINE_DIR)
        bad = open(os.path.join(quarantine,
                                "postings.bad.jsonl")).read()
        assert "{garbage" in bad
        diagnostics = open(os.path.join(quarantine, "REPORT.txt")).read()
        assert "postings.jsonl" in diagnostics
        assert "[" in diagnostics  # the [kind] tag

    def test_document_damage_rolls_back_to_intact_generation(
            self, figure1_doc, tmp_path):
        database = Database.from_document(figure1_doc)
        directory = tmp_path / "db"
        save_database(database, directory)
        pristine = answers(database)
        second = save_database(database, directory)
        doc_path = data_file(directory, "document.pxml")
        with open(doc_path, "ab") as handle:
            handle.write(b"<oops>")
        report = fsck_database(directory, repair=True)
        assert KIND_FALLBACK in kinds(report)
        assert report.repaired and report.document_ok
        assert current_generation(directory) != second
        assert answers(load_database(directory)) == pristine

    def test_single_corrupt_document_is_unrecoverable(self, populated):
        directory, _ = populated
        with open(data_file(directory, "document.pxml"), "ab") as handle:
            handle.write(b"<oops>")
        report = fsck_database(directory, repair=True)
        assert not report.document_ok
        assert report.exit_code() == 1
        assert any("UNRECOVERABLE" in line for line in report.lines())
        with pytest.raises(StorageError):
            load_database(directory)

    def test_bad_manifest_falls_back(self, figure1_doc, tmp_path):
        database = Database.from_document(figure1_doc)
        directory = tmp_path / "db"
        first = save_database(database, directory)
        save_database(database, directory)
        manifest = os.path.join(resolve_snapshot(directory)[0],
                                MANIFEST_FILE)
        with open(manifest, "w") as handle:
            handle.write("not json at all")
        report = fsck_database(directory, repair=True)
        assert KIND_BAD_MANIFEST in kinds(report)
        assert report.repaired
        assert current_generation(directory) == first

    def test_current_pointing_nowhere_falls_back(self, figure1_doc,
                                                 tmp_path):
        database = Database.from_document(figure1_doc)
        directory = tmp_path / "db"
        generation = save_database(database, directory)
        shutil.rmtree(snapshot_path(directory, generation))
        save_database(database, directory)
        missing = save_database(database, directory)
        shutil.rmtree(snapshot_path(directory, missing))
        report = fsck_database(directory, repair=True)
        assert KIND_MISSING_FILE in kinds(report)
        assert report.document_ok and report.repaired
        load_database(directory)

    def test_repair_is_idempotent(self, populated):
        directory, pristine = populated
        with open(data_file(directory, "postings.jsonl"), "a") as handle:
            handle.write("{garbage\n")
        fsck_database(directory, repair=True)
        report = fsck_database(directory, repair=True)
        assert report.clean and not report.repaired
        assert answers(load_database(directory)) == pristine


class TestLegacySalvage:
    @pytest.fixture
    def legacy_dir(self, figure1_doc, tmp_path):
        database = Database.from_document(figure1_doc)
        modern = tmp_path / "modern"
        save_database(database, modern)
        data_dir, _ = resolve_snapshot(modern)
        legacy = tmp_path / "legacy"
        os.makedirs(legacy)
        for name in DATA_FILES:
            shutil.copy(os.path.join(data_dir, name), legacy / name)
        return legacy

    def test_clean_legacy_reports_clean(self, legacy_dir):
        report = fsck_database(legacy_dir)
        assert report.legacy and report.clean and report.document_ok

    def test_malformed_element_is_salvaged_with_position(
            self, legacy_dir):
        doc_path = os.path.join(legacy_dir, "document.pxml")
        body = open(doc_path, encoding="utf-8").read()
        # Damage one leaf's probability attribute in place.
        damaged = body.replace('prob="0.8"', 'prob="bogus"', 1)
        assert damaged != body
        with open(doc_path, "w", encoding="utf-8") as handle:
            handle.write(damaged)
        report = fsck_database(legacy_dir, repair=True)
        assert KIND_MALFORMED_ELEMENT in kinds(report)
        assert KIND_DOCUMENT_DEGRADED in kinds(report)
        dropped = [f for f in report.findings
                   if f.kind == KIND_MALFORMED_ELEMENT]
        assert dropped[0].line is not None
        # Salvage migrates into the snapshot layout and stays loadable.
        assert report.repaired and report.document_ok
        assert current_generation(legacy_dir) is not None
        load_database(legacy_dir)
        subtrees = os.listdir(os.path.join(legacy_dir, QUARANTINE_DIR,
                                           "legacy"))
        assert any(name.startswith("subtree-") for name in subtrees)

    def test_legacy_postings_rebuild(self, legacy_dir, figure1_doc):
        with open(os.path.join(legacy_dir, "postings.jsonl"),
                  "a") as handle:
            handle.write("{garbage\n")
        report = fsck_database(legacy_dir, repair=True)
        assert report.repaired and report.document_ok
        rebuilt = load_database(legacy_dir)
        pristine = Database.from_document(figure1_doc)
        assert answers(rebuilt) == answers(pristine)


class TestFsckCli:
    def test_cli_clean_and_corrupt_paths(self, populated, capsys):
        from repro.cli import main
        directory, pristine = populated
        assert main(["fsck", str(directory)]) == 0
        assert "clean" in capsys.readouterr().out
        with open(data_file(directory, "postings.jsonl"),
                  "a") as handle:
            handle.write("{garbage\n")
        assert main(["fsck", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "bad_record" in out and "--repair" in out
        assert main(["fsck", str(directory), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "quarantined" in out
        assert answers(load_database(directory)) == pristine

    def test_cli_unrecoverable_exits_nonzero(self, populated, capsys):
        from repro.cli import main
        directory, _ = populated
        with open(data_file(directory, "document.pxml"),
                  "ab") as handle:
            handle.write(b"<oops>")
        assert main(["fsck", str(directory), "--repair"]) == 1
        assert "UNRECOVERABLE" in capsys.readouterr().out

    def test_cli_snapshot_list_and_write(self, populated, capsys):
        from repro.cli import main
        directory, _ = populated
        assert main(["snapshot", str(directory), "--list"]) == 0
        listed = capsys.readouterr().out
        assert "g00000001 *" in listed and "nodes" in listed
        assert main(["snapshot", str(directory)]) == 0
        assert "g00000002" in capsys.readouterr().out
        assert main(["snapshot", str(directory), "--list"]) == 0
        assert "g00000002 *" in capsys.readouterr().out
