"""The HTTP serving layer: protocol, admission, rate limiting, and the
in-process server (docs/SERVING.md)."""

import http.client
import json
import threading
import time

import pytest

from repro.core.api import topk_search
from repro.exceptions import QueryError, ReproError
from repro.obs import MetricsCollector, parse_prometheus, validate_report
from repro.resilience import parse_faults
from repro.serve import (ApiError, AdmissionController, NullRateLimiter,
                         ProtocolError, RateLimiter, ServeConfig,
                         classify_query_error, error_response,
                         parse_batch_request, parse_head,
                         parse_search_request, start_in_thread)
from repro.service import QueryService


# -- protocol -----------------------------------------------------------------


class TestParseHead:
    def test_request_line_and_headers(self):
        head = (b"POST /search?format=json&x HTTP/1.1\r\n"
                b"Content-Length: 12\r\n"
                b"X-Client-Id: alice\r\n\r\n")
        request = parse_head(head, client="1.2.3.4:5")
        assert request.method == "POST"
        assert request.path == "/search"
        assert request.query == {"format": "json", "x": ""}
        assert request.headers["content-length"] == "12"
        assert request.headers["x-client-id"] == "alice"
        assert request.client == "1.2.3.4:5"
        assert request.keep_alive

    def test_connection_close_disables_keep_alive(self):
        head = b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert not parse_head(head).keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError, match="request line"):
            parse_head(b"NONSENSE\r\n\r\n")
        with pytest.raises(ProtocolError, match="request line"):
            parse_head(b"GET /x SPDY/99\r\n\r\n")

    def test_malformed_header_line(self):
        with pytest.raises(ProtocolError, match="header line"):
            parse_head(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_body_json_errors_are_structured(self):
        request = parse_head(b"POST /search HTTP/1.1\r\n\r\n")
        with pytest.raises(ApiError) as caught:
            request.json()
        assert caught.value.status == 400
        assert caught.value.code == "bad_request"
        request.body = b"not json"
        with pytest.raises(ApiError, match="not valid JSON"):
            request.json()
        request.body = b"[1, 2]"
        with pytest.raises(ApiError, match="JSON object"):
            request.json()


class TestSearchRequest:
    def test_defaults(self):
        params = parse_search_request({"keywords": ["a", "b"]})
        assert params.keywords == ["a", "b"]
        assert params.k == 10
        assert params.algorithm == "eager"
        assert params.semantics == "slca"
        assert params.deadline_ms is None
        assert not params.spans

    def test_keyword_string_splits(self):
        assert parse_search_request(
            {"keywords": "a b"}).keywords == ["a", "b"]

    def test_unknown_field_is_named(self):
        with pytest.raises(ApiError) as caught:
            parse_search_request({"keywords": ["a"], "bogus": 1})
        assert caught.value.code == "bad_request"
        assert caught.value.field == "bogus"

    def test_missing_keywords(self):
        with pytest.raises(ApiError) as caught:
            parse_search_request({})
        assert caught.value.field == "keywords"

    @pytest.mark.parametrize("payload,field", [
        ({"keywords": []}, "keywords"),
        ({"keywords": [1]}, "keywords"),
        ({"keywords": ["a"], "k": "ten"}, "k"),
        ({"keywords": ["a"], "k": True}, "k"),
        ({"keywords": ["a"], "algorithm": "magic"}, "algorithm"),
        ({"keywords": ["a"], "semantics": "both"}, "semantics"),
        ({"keywords": ["a"], "deadline_ms": -5}, "deadline_ms"),
        ({"keywords": ["a"], "deadline_ms": "soon"}, "deadline_ms"),
        ({"keywords": ["a"], "spans": "yes"}, "spans"),
    ])
    def test_invalid_fields_are_attributed(self, payload, field):
        with pytest.raises(ApiError) as caught:
            parse_search_request(payload)
        assert caught.value.status == 400
        assert caught.value.field == field


class TestBatchRequest:
    def test_mixed_query_shapes(self):
        params = parse_batch_request(
            {"queries": [["a", "b"], "c d"], "executor": "serial"})
        assert params.queries == [["a", "b"], ["c", "d"]]
        assert params.executor == "serial"
        assert params.workers is None

    @pytest.mark.parametrize("payload,field", [
        ({}, "queries"),
        ({"queries": []}, "queries"),
        ({"queries": "not-a-list"}, "queries"),
        ({"queries": [["a"]], "executor": "gpu"}, "executor"),
        ({"queries": [["a"]], "workers": 0}, "workers"),
    ])
    def test_invalid_fields(self, payload, field):
        with pytest.raises(ApiError) as caught:
            parse_batch_request(payload)
        assert caught.value.field == field


class TestQueryErrorMapping:
    def test_k_errors_map_to_k(self):
        assert classify_query_error(
            QueryError("k must be positive, got 0")) == "k"

    def test_keyword_errors_map_to_keywords(self):
        assert classify_query_error(
            QueryError("duplicate query keyword 'A'")) == "keywords"

    def test_retry_after_header_rounds_up(self):
        raw = error_response(ApiError(429, "overloaded", "full",
                                      retry_after=0.3))
        head = raw.split(b"\r\n\r\n", 1)[0].decode()
        assert "Retry-After: 1" in head


# -- admission ----------------------------------------------------------------


class TestAdmission:
    def test_cap_and_release(self):
        admission = AdmissionController(2)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()
        admission.release()
        assert admission.try_acquire()
        stats = admission.stats()
        assert stats["rejected"] == 1
        assert stats["admitted"] == 3
        assert stats["peak_inflight"] == 2

    def test_drain_refuses_new_work(self):
        admission = AdmissionController(2)
        assert admission.try_acquire()
        admission.begin_drain()
        assert not admission.try_acquire()
        assert admission.stats()["refused_draining"] == 1
        assert admission.inflight() == 1  # the admitted one keeps its slot

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController(1).release()

    def test_wait_idle(self):
        admission = AdmissionController(1)
        assert admission.wait_idle(timeout_s=0.1)
        admission.try_acquire()
        assert not admission.wait_idle(timeout_s=0.05, poll_s=0.01)
        timer = threading.Timer(0.05, admission.release)
        timer.start()
        assert admission.wait_idle(timeout_s=2.0, poll_s=0.01)
        timer.cancel()

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


# -- rate limiting ------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRateLimiter:
    def test_burst_then_limited(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
        assert limiter.check("alice") is None
        assert limiter.check("alice") is None
        delay = limiter.check("alice")
        assert delay == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=1, clock=clock)
        assert limiter.check("a") is None
        assert limiter.check("a") == pytest.approx(0.5)
        clock.now = 0.5
        assert limiter.check("a") is None

    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.check("a") is None
        assert limiter.check("b") is None
        assert limiter.check("a") is not None

    def test_lru_eviction_is_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=2,
                              clock=clock)
        for client in ("a", "b", "c"):
            limiter.check(client)
        stats = limiter.stats()
        assert stats["clients"] == 2
        assert stats["evicted"] == 1
        # "a" was evicted; a fresh bucket admits it again.
        assert limiter.check("a") is None

    def test_null_limiter_admits_everything(self):
        limiter = NullRateLimiter()
        assert all(limiter.check("x") is None for _ in range(100))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=1, max_clients=0)


# -- the in-process server ----------------------------------------------------


class ServerClient:
    """Tiny keep-alive test client over http.client."""

    def __init__(self, port):
        self.port = port

    def request(self, method, path, payload=None, headers=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=30)
        try:
            body = json.dumps(payload).encode() \
                if payload is not None else None
            connection.request(method, path, body=body,
                               headers=headers or {})
            response = connection.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw and (
                response.getheader("Content-Type", "")
                .startswith("application/json")) else raw
            return response.status, parsed, {
                name.lower(): value
                for name, value in response.getheaders()}
        finally:
            connection.close()

    def post(self, path, payload, headers=None):
        return self.request("POST", path, payload, headers)

    def get(self, path):
        return self.request("GET", path)


@pytest.fixture()
def server(figure1_db):
    collector = MetricsCollector()
    service = QueryService(figure1_db, collector=collector)
    handle = start_in_thread(
        service, ServeConfig(max_inflight=4),
        collector=collector)
    yield {"handle": handle, "service": service,
           "db": figure1_db, "collector": collector,
           "client": ServerClient(handle.port)}
    assert handle.stop() == 0


class TestServerEndpoints:
    def test_search_is_bit_identical_to_topk_search(self, server):
        status, body, _ = server["client"].post(
            "/search", {"keywords": ["k1", "k2"], "k": 5})
        assert status == 200
        local = topk_search(server["db"], ["k1", "k2"], 5)
        assert [(r["code"], r["probability"])
                for r in body["results"]] == \
            [(str(r.code), r.probability) for r in local.results]
        assert body["partial"] is False
        assert body["termination_reason"] == "complete"
        assert body["service_state"]["epoch"] == 1
        assert "trace_id" in body

    def test_search_maps_query_errors_to_structured_400(self, server):
        status, body, _ = server["client"].post(
            "/search", {"keywords": ["k1"], "k": 0})
        assert status == 400
        assert body["error"]["code"] == "invalid_query"
        assert body["error"]["field"] == "k"
        assert "k must be positive" in body["error"]["message"]

    def test_duplicate_keyword_400(self, server):
        status, body, _ = server["client"].post(
            "/search", {"keywords": ["k1", "K1"], "k": 3})
        assert status == 400
        assert body["error"]["code"] == "invalid_query"
        assert body["error"]["field"] == "keywords"

    def test_unknown_field_400(self, server):
        status, body, _ = server["client"].post(
            "/search", {"keywords": ["k1"], "bogus": 1})
        assert status == 400
        assert body["error"]["field"] == "bogus"

    def test_malformed_json_400(self, server):
        client = server["client"]
        connection = http.client.HTTPConnection("127.0.0.1",
                                                client.port, timeout=30)
        try:
            connection.request("POST", "/search", body=b"{nope")
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "bad_request"
        finally:
            connection.close()

    def test_unknown_path_404(self, server):
        status, body, _ = server["client"].get("/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_405(self, server):
        status, body, _ = server["client"].post("/health", {})
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"

    def test_health_shape(self, server):
        status, body, _ = server["client"].get("/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["epoch"] == 1
        assert body["breaker"]["state"] == "closed"
        assert body["admission"]["max_inflight"] == 4
        assert body["reload_in_flight"] is False

    def test_batch_aligns_with_single_searches(self, server):
        queries = [["k1"], ["k1", "k2"], ["k2"]]
        status, body, _ = server["client"].post(
            "/batch", {"queries": queries, "k": 4,
                       "executor": "serial"})
        assert status == 200
        assert body["stats"] == {"queries": 3, "partial": 0,
                                 "errors": 0}
        for query, outcome in zip(queries, body["outcomes"]):
            local = topk_search(server["db"], query, 4)
            assert [(r["code"], r["probability"])
                    for r in outcome["results"]] == \
                [(str(r.code), r.probability) for r in local.results]

    def test_metrics_prometheus_scrape(self, server):
        # Prime at least one request so timer quantiles exist.
        server["client"].post("/search", {"keywords": ["k1"]})
        status, raw, headers = server["client"].get("/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        samples = parse_prometheus(raw.decode())
        assert samples["repro_serve_admission_max_inflight"] == 4
        assert any(name.startswith("repro_serve_generation_info{")
                   for name in samples)
        assert any('quantile="0.99"' in name for name in samples)

    def test_metrics_json_is_valid_v2_report(self, server):
        status, body, _ = server["client"].get("/metrics?format=json")
        assert status == 200
        report = validate_report(body)
        assert report["schema"] == "repro.metrics/v2"
        assert "admission" in report["stats"]["serve"]

    def test_reload_of_adhoc_source_is_structured_500(self, server):
        status, body, _ = server["client"].post("/reload", {})
        assert status == 500
        assert body["error"]["code"] == "reload_failed"
        # The old generation keeps serving.
        status, _, _ = server["client"].post(
            "/search", {"keywords": ["k1"]})
        assert status == 200

    def test_reload_conflict_while_in_flight(self, server):
        server["handle"].server._reload_inflight = True
        try:
            status, body, _ = server["client"].post("/reload", {})
            assert status == 409
            assert body["error"]["code"] == "reload_in_flight"
        finally:
            server["handle"].server._reload_inflight = False

    def test_served_query_produces_cli_equivalent_span_tree(self, server):
        from repro.obs import SpanTracer
        status, body, _ = server["client"].post(
            "/search", {"keywords": ["k1", "k2"], "k": 3,
                        "spans": True})
        assert status == 200
        served = {span["name"] for span in body["spans"]}
        tracer = SpanTracer(trace_id="cli")
        server["service"].search(["k1", "k2"], 3, tracer=tracer)
        cli = {span.name for span in tracer.finished}
        # The served tree is the CLI tree under one http.request root.
        assert cli <= served
        assert "http.request" in served
        assert "query" in served

    def test_responses_count_into_metrics(self, server):
        before = server["collector"].counter("serve.requests")
        server["client"].get("/health")
        assert server["collector"].counter("serve.requests") == \
            before + 1


class TestOverloadAndRateLimit:
    def test_overload_returns_429_with_retry_after(self, figure1_db):
        service = QueryService(figure1_db)
        handle = start_in_thread(
            service, ServeConfig(max_inflight=1),
            faults=parse_faults("slow_query:delay_ms=300"))
        client = ServerClient(handle.port)
        results = []

        def one():
            results.append(client.post("/search",
                                       {"keywords": ["k1"]}))

        threads = [threading.Thread(target=one) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = sorted(status for status, _, _ in results)
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 1
        assert set(statuses) <= {200, 429}
        for status, body, headers in results:
            if status == 429:
                assert body["error"]["code"] == "overloaded"
                assert int(headers["retry-after"]) >= 1
        assert handle.stop() == 0

    def test_rate_limit_keyed_by_trusted_header(self, figure1_db):
        service = QueryService(figure1_db)
        handle = start_in_thread(
            service, ServeConfig(max_inflight=4, rate=0.001, burst=2,
                                 trust_client_header=True))
        client = ServerClient(handle.port)
        try:
            alice = {"X-Client-Id": "alice"}
            bob = {"X-Client-Id": "bob"}
            assert client.post("/search", {"keywords": ["k1"]},
                               alice)[0] == 200
            assert client.post("/search", {"keywords": ["k1"]},
                               alice)[0] == 200
            status, body, headers = client.post(
                "/search", {"keywords": ["k1"]}, alice)
            assert status == 429
            assert body["error"]["code"] == "rate_limited"
            assert "retry-after" in headers
            # A different client id is a different bucket.
            assert client.post("/search", {"keywords": ["k1"]},
                               bob)[0] == 200
        finally:
            assert handle.stop() == 0

    def test_header_is_ignored_without_trust(self, figure1_db):
        service = QueryService(figure1_db)
        handle = start_in_thread(
            service, ServeConfig(max_inflight=4, rate=0.001, burst=2))
        client = ServerClient(handle.port)
        try:
            # By default identity is the peer address, so rotating
            # client ids cannot dodge the bucket or churn the LRU.
            for index, expected in enumerate((200, 200, 429)):
                status, _, _ = client.post(
                    "/search", {"keywords": ["k1"]},
                    {"X-Client-Id": f"sock-puppet-{index}"})
                assert status == expected
            assert handle.server._ratelimit.stats()["clients"] == 1
        finally:
            assert handle.stop() == 0


class TestInProcessDrain:
    def test_drain_completes_inflight_and_refuses_new(self, figure1_db):
        service = QueryService(figure1_db)
        handle = start_in_thread(
            service, ServeConfig(max_inflight=2),
            faults=parse_faults("slow_query:delay_ms=400"))
        client = ServerClient(handle.port)
        slow_result = {}

        def slow():
            slow_result["response"] = client.post(
                "/search", {"keywords": ["k1"]})

        thread = threading.Thread(target=slow)
        thread.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if handle.server._admission.inflight() > 0:
                break
            time.sleep(0.01)
        assert handle.server._admission.inflight() > 0
        handle.server.request_stop()
        thread.join(timeout=10)
        status, body, headers = slow_result["response"]
        assert status == 200
        assert body["service_state"]["epoch"] == 1
        # A response written during drain tells the client to close.
        assert headers["connection"] == "close"
        # The listener is gone: a new connection must be refused.
        with pytest.raises(OSError):
            http.client.HTTPConnection(
                "127.0.0.1", client.port, timeout=2).request(
                "GET", "/health")
        assert handle.stop() == 0

    def test_idle_keep_alive_connection_does_not_block_drain(
            self, figure1_db):
        service = QueryService(figure1_db)
        handle = start_in_thread(service, ServeConfig(max_inflight=2))
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10)
        try:
            connection.request("GET", "/health")
            response = connection.getresponse()
            response.read()
            assert response.status == 200
            assert response.getheader("Connection") == "keep-alive"
            # The connection stays open and idle; drain must close it
            # rather than wait out the 30s drain timeout (or, on
            # Python >= 3.12.1, hang in Server.wait_closed forever).
            started = time.time()
            assert handle.stop(timeout_s=5.0) == 0
            assert time.time() - started < 5.0
        finally:
            connection.close()

    def test_stragglers_are_cancelled_at_drain_timeout(
            self, figure1_db):
        service = QueryService(figure1_db)
        handle = start_in_thread(
            service, ServeConfig(max_inflight=2, drain_timeout_s=0.3),
            faults=parse_faults("slow_query:delay_ms=3000"))
        client = ServerClient(handle.port)
        slow_result = {}

        def slow():
            try:
                slow_result["response"] = client.post(
                    "/search", {"keywords": ["k1"]})
            except OSError as error:
                slow_result["error"] = error

        thread = threading.Thread(target=slow)
        thread.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if handle.server._admission.inflight() > 0:
                break
            time.sleep(0.01)
        assert handle.server._admission.inflight() > 0
        started = time.time()
        # The 3s query outlives the 0.3s drain budget: its connection
        # is cancelled and the server still exits 0, promptly.
        assert handle.stop(timeout_s=10.0) == 0
        assert time.time() - started < 2.5
        thread.join(timeout=10)
        assert "response" in slow_result or "error" in slow_result


class TestStartInThread:
    def test_port_conflict_surfaces_as_error(self, figure1_db):
        service = QueryService(figure1_db)
        first = start_in_thread(service, ServeConfig())
        try:
            with pytest.raises(ReproError, match="failed to start"):
                start_in_thread(service,
                                ServeConfig(port=first.port))
        finally:
            assert first.stop() == 0


# -- rate-limit peer keying (the IPv6 satellite bugfix) -----------------------


class RecordingLimiter:
    """A rate limiter that admits everything and remembers the keys."""

    def __init__(self):
        self.keys = []

    def check(self, client):
        self.keys.append(client)
        return None

    def stats(self):
        return {"buckets": 0}


class TestRateLimitPeerKeying:
    """Buckets must key on the host element of the socket address
    tuple, never on string-parsing the display address — splitting
    ``[::1]:51000`` at its last colon would shear an IPv6 peer into
    one bucket per source port."""

    def make_server(self, figure1_db):
        from repro.serve import ServeServer
        service = QueryService(figure1_db)
        limiter = RecordingLimiter()
        server = ServeServer(service, ServeConfig(rate=100.0),
                             ratelimiter=limiter)
        return server, limiter

    def admit(self, server, client, client_host, headers=b""):
        request = parse_head(b"POST /search HTTP/1.1\r\n" + headers
                             + b"\r\n",
                             client=client, client_host=client_host)
        server._admit(request)
        server._admission.release()

    def test_ipv6_ports_share_one_bucket(self, figure1_db):
        server, limiter = self.make_server(figure1_db)
        self.admit(server, "[::1]:51000", "::1")
        self.admit(server, "[::1]:51001", "::1")
        assert limiter.keys == ["::1", "::1"]

    def test_ipv4_mapped_peer_keys_whole_address(self, figure1_db):
        server, limiter = self.make_server(figure1_db)
        self.admit(server, "[::ffff:127.0.0.1]:4242",
                   "::ffff:127.0.0.1")
        assert limiter.keys == ["::ffff:127.0.0.1"]

    def test_ipv4_peer_keys_on_host_not_port(self, figure1_db):
        server, limiter = self.make_server(figure1_db)
        self.admit(server, "1.2.3.4:5678", "1.2.3.4")
        self.admit(server, "1.2.3.4:5679", "1.2.3.4")
        assert limiter.keys == ["1.2.3.4", "1.2.3.4"]

    def test_missing_host_falls_back_to_display_string(
            self, figure1_db):
        server, limiter = self.make_server(figure1_db)
        self.admit(server, "unknown", "")
        assert limiter.keys == ["unknown"]

    def test_trusted_header_still_wins(self, figure1_db):
        from repro.serve import ServeServer
        service = QueryService(figure1_db)
        limiter = RecordingLimiter()
        server = ServeServer(
            service, ServeConfig(rate=100.0,
                                 trust_client_header=True),
            ratelimiter=limiter)
        request = parse_head(b"POST /search HTTP/1.1\r\n"
                             b"X-Client-Id: alice\r\n\r\n",
                             client="[::1]:51000", client_host="::1")
        server._admit(request)
        server._admission.release()
        assert limiter.keys == ["alice"]


# -- draining Retry-After + deadline stamping (replication PR satellites) -----


class TestDrainingRetryAfter:
    def test_draining_503_carries_retry_after(self, figure1_db):
        # Satellite bugfix: a request caught by the drain must get
        # the same back-off signal a 429 carries.  (New connections
        # are dropped at accept during drain; the 503 is for requests
        # already in flight when drain begins, so the deterministic
        # probe is the admission layer itself.)
        from repro.serve import ServeServer
        server = ServeServer(QueryService(figure1_db), ServeConfig())
        server._admission.begin_drain()
        request = parse_head(b"POST /search HTTP/1.1\r\n\r\n",
                             client="1.2.3.4:5678",
                             client_host="1.2.3.4")
        with pytest.raises(ApiError) as caught:
            server._admit(request)
        error = caught.value
        assert error.status == 503
        assert error.code == "draining"
        head = error_response(error).split(b"\r\n\r\n", 1)[0].decode()
        assert "Retry-After: 1" in head


class TestDeadlineStamping:
    def test_deadline_ms_is_stamped_and_produces_honest_partials(
            self, server):
        # The server stamps one absolute Deadline at admission; a
        # budget this small expires inside the engine, which must
        # surface as an honest partial — never a 5xx.
        status, body, _ = server["client"].post(
            "/search", {"keywords": ["k1", "k2"], "deadline_ms": 1e-4})
        assert status == 200
        assert body["partial"] is True
        assert body["termination_reason"] == "deadline"

    def test_generous_deadline_changes_nothing(self, server):
        status, body, _ = server["client"].post(
            "/search", {"keywords": ["k1", "k2"],
                        "deadline_ms": 60000})
        assert status == 200
        assert body["partial"] is False
