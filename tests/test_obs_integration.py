"""Integration tests: observability threaded through the search stack.

Covers the ISSUE acceptance criteria: instrumented PrStack and
EagerTopK runs report consistent operation counts, the default no-op
collector changes nothing about the results, ``SearchOutcome.stats``
carries the per-property pruning breakdown, and an emitted metrics
report validates against the documented schema.
"""

import json

import pytest

from repro import MetricsCollector, topk_search
from repro.core.explain import profile_lines
from repro.exceptions import QueryError
from repro.obs.report import build_report, validate_report

KEYWORDS = ["k1", "k2"]


def _codes_and_probs(outcome):
    return [(str(r.code), r.probability) for r in outcome]


class TestNoOpDefault:
    def test_results_identical_with_and_without_collector(self, figure1_db):
        for algorithm in ("prstack", "eager"):
            plain = topk_search(figure1_db, KEYWORDS, 5, algorithm)
            instrumented = topk_search(figure1_db, KEYWORDS, 5, algorithm,
                                       collector=MetricsCollector(trace=True))
            assert _codes_and_probs(plain) == _codes_and_probs(instrumented)

    def test_uninstrumented_outcome_has_no_metrics(self, figure1_db):
        outcome = topk_search(figure1_db, KEYWORDS, 5, "eager")
        assert outcome.metrics == {}
        assert outcome.trace is None


class TestInstrumentedStats:
    def test_eager_reports_per_property_pruning(self, figure1_db):
        outcome = topk_search(figure1_db, KEYWORDS, 2, "eager")
        pruning = outcome.stats["pruning"]
        for key in ("path_bound_properties_1_3",
                    "node_bound_properties_4_5",
                    "dead_path_skips", "bound_evaluations"):
            assert pruning[key] >= 0
        assert pruning["bound_evaluations"] > 0
        assert outcome.stats["heap_threshold_final"] >= 0.0

    def test_prstack_reports_frame_and_heap_counts(self, figure1_db):
        collector = MetricsCollector()
        outcome = topk_search(figure1_db, KEYWORDS, 5, "prstack",
                              collector=collector)
        assert outcome.stats["frames_pushed"] > 0
        assert outcome.stats["frames_popped"] == \
            outcome.stats["frames_pushed"]
        counters = collector.snapshot()["counters"]
        assert counters["engine.frames_pushed"] == \
            outcome.stats["frames_pushed"]
        assert counters["heap.offers"] >= counters["heap.accepted"]
        assert counters["prstack.entries_scanned"] == \
            outcome.stats["entries_scanned"]

    def test_algorithms_agree_on_work_accounting(self, figure1_db):
        """PrStack scans every match entry; EagerTopK consumes at most
        that many (pruning can only reduce work, never invent it)."""
        prstack = topk_search(figure1_db, KEYWORDS, 5, "prstack")
        eager = topk_search(figure1_db, KEYWORDS, 5, "eager")
        assert eager.stats["entries_consumed"] <= \
            prstack.stats["entries_scanned"]
        assert eager.stats["entries_consumed"] + \
            eager.stats["entries_unconsumed"] == \
            prstack.stats["entries_scanned"]

    def test_index_metrics_cover_every_term(self, figure1_db):
        collector = MetricsCollector()
        topk_search(figure1_db, KEYWORDS, 5, "prstack",
                    collector=collector)
        snapshot = collector.snapshot()
        assert snapshot["counters"]["index.lookups"] == len(KEYWORDS)
        assert snapshot["histograms"]["index.postings_length"]["count"] \
            == len(KEYWORDS)
        assert "search.total" in snapshot["timers"]

    def test_monte_carlo_accepts_collector(self, figure1_db):
        from repro import monte_carlo_search
        collector = MetricsCollector()
        import random
        outcome = monte_carlo_search(figure1_db.index, KEYWORDS, 3,
                                     samples=50, rng=random.Random(7),
                                     collector=collector)
        assert collector.counter("monte_carlo.worlds_sampled") == 50
        assert outcome.stats["metrics"]["counters"]


class TestTracing:
    def test_trace_records_query_narrative(self, figure1_db):
        outcome = topk_search(figure1_db, KEYWORDS, 2, "eager",
                              trace=True)
        trace = outcome.trace
        assert trace is not None and len(trace) > 0
        names = {event.name for event in trace}
        assert "eager.process" in names

    def test_profile_lines_render_instrumented_outcome(self, figure1_db):
        outcome = topk_search(figure1_db, KEYWORDS, 5, "prstack",
                              trace=True)
        lines = profile_lines(outcome)
        text = "\n".join(lines)
        assert lines[0] == "profile"
        assert "counters" in text and "timers (ms)" in text
        assert "engine.frames_pushed" in text

    def test_profile_lines_degrade_without_metrics(self, figure1_db):
        outcome = topk_search(figure1_db, KEYWORDS, 5, "prstack")
        assert profile_lines(outcome) == [
            "profile: no metrics were collected "
            "(run with a MetricsCollector / --profile)"]


class TestAlgorithmCoercion:
    def test_case_insensitive_names(self, figure1_db):
        upper = topk_search(figure1_db, KEYWORDS, 5, "PRSTACK")
        mixed = topk_search(figure1_db, KEYWORDS, 5, "PrStack")
        assert _codes_and_probs(upper) == _codes_and_probs(mixed)

    def test_unknown_algorithm_names_choices(self, figure1_db):
        with pytest.raises(QueryError) as excinfo:
            topk_search(figure1_db, KEYWORDS, 5, "quantum")
        message = str(excinfo.value)
        assert "quantum" in message
        for choice in ("prstack", "eager", "possible_worlds"):
            assert choice in message


class TestMetricsReport:
    def test_report_roundtrips_through_json(self, figure1_db, tmp_path):
        collector = MetricsCollector(trace=True)
        outcome = topk_search(figure1_db, KEYWORDS, 5, "eager",
                              collector=collector)
        report = build_report(KEYWORDS, 5, "eager", "slca", outcome,
                              elapsed_ms=1.25)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(report))
        parsed = json.loads(path.read_text())
        validate_report(parsed)
        assert parsed["schema"] == "repro.metrics/v1"
        assert parsed["result_count"] == len(outcome)
        assert parsed["metrics"]["counters"]
        assert parsed["trace"]
        # the live recorder / snapshot never leak into the stats copy
        assert "metrics" not in parsed["stats"]
        assert "trace" not in parsed["stats"]

    def test_report_valid_without_instrumentation(self, figure1_db):
        outcome = topk_search(figure1_db, KEYWORDS, 5, "prstack")
        report = build_report(KEYWORDS, 5, "prstack", "slca", outcome,
                              elapsed_ms=0.5)
        validate_report(report)
        assert report["metrics"] == {}
        assert "trace" not in report


class TestBenchMetrics:
    def test_run_query_attaches_operation_counts(self, figure1_db):
        from repro.bench import run_query
        measurement = run_query(figure1_db, KEYWORDS, 5, "eager",
                                repeats=1)
        counters = measurement.metrics["counters"]
        assert counters["eager.candidates_processed"] > 0

    def test_metrics_collection_can_be_disabled(self, figure1_db):
        from repro.bench import run_query
        measurement = run_query(figure1_db, KEYWORDS, 5, "eager",
                                repeats=1, collect_metrics=False)
        assert measurement.metrics == {}
