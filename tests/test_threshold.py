"""Unit tests for the threshold-search extension."""

import pytest

from repro import prstack_search, threshold_search
from repro.exceptions import QueryError


class TestThresholdSearch:
    def test_matches_prstack_above_cutoff(self, figure1_db):
        everything = prstack_search(figure1_db.index, ["k1", "k2"],
                                    k=1000)
        cutoff = 0.05
        expected = [(str(r.code), round(r.probability, 10))
                    for r in everything if r.probability >= cutoff]
        outcome = threshold_search(figure1_db.index, ["k1", "k2"],
                                   cutoff)
        assert [(str(r.code), round(r.probability, 10))
                for r in outcome] == expected

    def test_low_threshold_returns_all_nonzero(self, figure1_db):
        everything = prstack_search(figure1_db.index, ["k1"], k=1000)
        outcome = threshold_search(figure1_db.index, ["k1"], 1e-12)
        assert len(outcome) == len(everything)

    def test_high_threshold_may_be_empty(self, fragment_db):
        outcome = threshold_search(fragment_db.index, ["k1", "k2"],
                                   0.99)
        assert len(outcome) == 0
        assert outcome.stats["results_emitted"] >= 1

    def test_threshold_validation(self, fragment_db):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(QueryError):
                threshold_search(fragment_db.index, ["k1"], bad)

    def test_missing_keyword(self, fragment_db):
        outcome = threshold_search(fragment_db.index,
                                   ["k1", "zebra"], 0.1)
        assert len(outcome) == 0

    def test_sorted_output(self, figure1_db):
        outcome = threshold_search(figure1_db.index, ["k2"], 0.01)
        probabilities = outcome.probabilities()
        assert probabilities == sorted(probabilities, reverse=True)
