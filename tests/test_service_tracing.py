"""Service-level observability: cross-executor metric parity (S1),
resilience events through the collector and flight recorder (S2), and
span propagation through worker crashes and degradation (S3)."""

import pytest

from repro.obs import FlightRecorder, MetricsCollector
from repro.obs.spans import SpanTracer, derive_trace_id, validate_spans
from repro.resilience import (CircuitBreaker, Fault, FaultInjector,
                              parse_faults)
from repro.service import QueryService

# Distinct term sets so neither the result cache nor the match-entry
# cache short-circuits real engine work in any executor.
QUERIES = [["k1"], ["k2"], ["k1", "k2"]]

#: Counters that measure algorithm work — cache- and executor-
#: independent by design, so they must agree across executors.
ENGINE_PREFIXES = ("eager.", "engine.", "heap.", "prstack.")


def engine_counters(collector):
    return {name: value
            for name, value in collector.snapshot()["counters"].items()
            if name.startswith(ENGINE_PREFIXES)}


def signature(outcome):
    return [(str(result.code), result.probability)
            for result in outcome.results]


class TestCounterParity:
    """S1: one merged report regardless of the executor."""

    def run_batch(self, db, **kwargs):
        collector = MetricsCollector()
        service = QueryService(db, collector=collector)
        batch = service.batch_search(QUERIES, k=3, **kwargs)
        return batch, engine_counters(collector)

    @pytest.mark.parametrize("algorithm", ["eager", "prstack"])
    def test_process_counters_match_serial(self, figure1_db, algorithm):
        serial_batch, serial = self.run_batch(
            figure1_db, algorithm=algorithm)
        process_batch, process = self.run_batch(
            figure1_db, algorithm=algorithm, workers=2,
            executor="process")
        assert serial  # the parity check must not be vacuous
        assert process == serial
        assert [signature(o) for o in process_batch] == \
            [signature(o) for o in serial_batch]
        merged = process_batch.stats["workers_merged"]
        assert merged["merged_snapshots"] >= 1
        assert merged["pids"]

    def test_thread_counters_match_serial(self, figure1_db):
        _, serial = self.run_batch(figure1_db)
        _, threaded = self.run_batch(figure1_db, workers=3,
                                     executor="thread")
        assert threaded == serial

    def test_uninstrumented_process_batch_skips_merging(self, figure1_db):
        service = QueryService(figure1_db)
        batch = service.batch_search(QUERIES, k=3, workers=2,
                                     executor="process")
        assert "workers_merged" not in batch.stats


class TestResilienceEvents:
    """S2: every resilience bump is mirrored to the collector and the
    flight recorder."""

    def test_retries_reach_collector_and_recorder(self, figure1_db):
        collector = MetricsCollector()
        recorder = FlightRecorder()
        service = QueryService(figure1_db, collector=collector,
                               recorder=recorder)
        faults = parse_faults("query_error:times=2", seed=3)
        batch = service.batch_search(QUERIES, k=3, faults=faults,
                                     max_retries=2)
        res = batch.stats["resilience"]
        assert res["retries"] >= 1
        assert res["query_errors"] == 0
        counters = collector.snapshot()["counters"]
        assert counters["resilience.retries"] == res["retries"]
        assert counters["resilience.recovered_queries"] == \
            res["recovered_queries"]
        names = {(r["kind"], r["name"]) for r in recorder.snapshot()}
        assert ("resilience", "retries") in names

    def test_backoff_waits_are_counted_and_timed(self, figure1_db):
        collector = MetricsCollector()
        service = QueryService(figure1_db, collector=collector)
        faults = parse_faults("query_error:times=2", seed=3)
        batch = service.batch_search(QUERIES, k=3, faults=faults,
                                     max_retries=2)
        res = batch.stats["resilience"]
        if res["backoff_waits"]:  # policy-dependent: zero-delay skips
            snapshot = collector.snapshot()
            assert snapshot["counters"]["resilience.backoff_waits"] == \
                res["backoff_waits"]
            assert snapshot["timers"]["resilience.backoff"]["count"] == \
                res["backoff_waits"]

    def test_open_breaker_skip_hits_the_recorder(self, figure1_db):
        recorder = FlightRecorder()
        breaker = CircuitBreaker(threshold=1, cooldown_s=3600.0)
        breaker.record_failure()
        assert breaker.state == "open"
        service = QueryService(figure1_db, breaker=breaker,
                               collector=MetricsCollector(),
                               recorder=recorder)
        batch = service.batch_search(QUERIES, k=3, workers=2,
                                     executor="process")
        assert batch.stats["resilience"]["circuit_open_skips"] == 1
        names = {(r["kind"], r["name"]) for r in recorder.snapshot()}
        assert ("resilience", "breaker_open_skip") in names
        assert ("resilience", "circuit_open_skips") in names

    def test_error_outcome_reaches_the_recorder(self, figure1_db):
        recorder = FlightRecorder()
        service = QueryService(figure1_db,
                               collector=MetricsCollector(),
                               recorder=recorder)
        faults = parse_faults("query_error:times=9", seed=3)
        batch = service.batch_search(QUERIES, k=3, faults=faults,
                                     max_retries=0)
        assert batch.stats["resilience"]["query_errors"] == len(QUERIES)
        errors = [r for r in recorder.snapshot()
                  if r["name"] == "query.error"]
        assert len(errors) == len(QUERIES)
        assert all("InjectedFaultError" in r["error"] for r in errors)


class TestSpanPropagation:
    """S3: the span tree reconstructs chunk -> worker -> engine scan,
    survives worker crashes, and is deterministic under seeded faults."""

    def test_clean_process_batch_adopts_worker_spans(self, figure1_db):
        collector = MetricsCollector()
        service = QueryService(figure1_db, collector=collector)
        tracer = SpanTracer(trace_id=derive_trace_id("clean", 0))
        batch = service.batch_search(QUERIES, k=3, workers=2,
                                     executor="process", tracer=tracer)
        assert batch.stats["trace_id"] == tracer.trace_id
        spans = validate_spans(tracer.export())
        by_id = {s["span_id"]: s for s in spans}
        chunks = [s for s in spans if s["name"] == "chunk"]
        workers = [s for s in spans if s["name"] == "worker"]
        assert all(c["attrs"]["tier"] == "process" for c in chunks)
        assert workers
        for worker in workers:
            assert worker["span_id"].endswith(".w")
            parent = by_id[worker["parent_id"]]
            assert parent["name"] == "chunk"
            assert "pid" in worker["attrs"]
        queries = [s for s in spans if s["name"] == "query"]
        assert sorted(q["attrs"]["terms"] for q in queries) == \
            ["k1", "k1 k2", "k2"]
        # engine phases arrive via the timer->span bridge
        assert any(s["name"] == "search.total" for s in spans)
        assert {s["name"] for s in spans if "." in s["name"]} >= \
            {"search.total", "index.lookup"}

    def test_spans_survive_worker_crash_and_degradation(self, figure1_db):
        # The crash targets 'zzz' and fires late, so the healthy
        # chunk's worker spans are harvested while the crashed chunk's
        # queries re-run (and re-trace) on the thread tier.
        queries = [["k1"], ["k1", "k2"], ["k2"], ["zzz"]]
        collector = MetricsCollector()
        service = QueryService(figure1_db, collector=collector)
        faults = FaultInjector(
            [Fault(kind="worker_crash", terms=("zzz",),
                   delay_ms=400.0)], seed=7)
        tracer = SpanTracer(trace_id=derive_trace_id("crash", 7))
        batch = service.batch_search(queries, k=3, workers=2,
                                     executor="process", faults=faults,
                                     max_retries=2, tracer=tracer)
        assert batch.stats["resilience"]["query_errors"] == 0
        spans = validate_spans(tracer.export())
        chunks = {s["span_id"]: s for s in spans
                  if s["name"] == "chunk"}
        crashed = [s for s in chunks.values()
                   if s.get("status") == "error"]
        assert len(crashed) == 1
        retried = [s for s in chunks.values()
                   if s["attrs"]["tier"] == "thread-retry"]
        assert retried
        degrades = [s for s in spans if s["name"] == "degrade"]
        assert degrades and degrades[0]["attrs"]["tier"] == "thread"
        workers = [s for s in spans if s["name"] == "worker"]
        assert workers  # the healthy chunk's spans were adopted
        assert all(s["parent_id"] not in
                   {c["span_id"] for c in crashed} for s in workers)
        # every query got traced at *some* tier
        traced_terms = {s["attrs"]["terms"] for s in spans
                        if s["name"] == "query"}
        assert traced_terms == {"k1", "k1 k2", "k2", "zzz"}

    def test_serial_fault_runs_are_deterministic(self, figure1_db):
        def run():
            service = QueryService(figure1_db,
                                   collector=MetricsCollector())
            faults = parse_faults("query_error:rate=0.5", seed=13)
            tracer = SpanTracer(
                trace_id=derive_trace_id(QUERIES, "query_error", 13))
            service.batch_search(QUERIES, k=3, faults=faults,
                                 max_retries=2, tracer=tracer)
            return tracer.trace_id, [
                (s["span_id"], s["name"], s["parent_id"],
                 s.get("status", "ok"))
                for s in sorted(tracer.export(),
                                key=lambda s: s["span_id"])]

        first_id, first = run()
        second_id, second = run()
        assert first_id == second_id
        assert first == second

    def test_result_cache_replay_appears_as_span(self, figure1_db):
        service = QueryService(figure1_db,
                               collector=MetricsCollector())
        service.batch_search([["k1"]], k=3)
        tracer = SpanTracer(trace_id=derive_trace_id("replay"))
        service.batch_search([["k1"]], k=3, tracer=tracer)
        replays = [s for s in tracer.export()
                   if s["name"] == "query"
                   and s.get("attrs", {}).get("cache") == "result_cache"]
        assert len(replays) == 1

    def test_untraced_batch_records_no_trace_id(self, figure1_db):
        service = QueryService(figure1_db)
        batch = service.batch_search(QUERIES, k=3)
        assert "trace_id" not in batch.stats
