"""Integration tests: the full pipeline on scaled-down experiment data.

Generator -> probabilistic injection -> encoding -> index -> both
algorithms, on miniature versions of the Table II corpora, with the
Table III queries.
"""

import pytest

from repro import Database, document_stats, topk_search, validate_document
from repro.datagen import (generate_dblp, generate_mondial, generate_xmark,
                           make_probabilistic, query_keywords,
                           queries_for_dataset)


@pytest.fixture(scope="module")
def mini_databases():
    corpora = {
        "xmark": generate_xmark(scale=1),
        "mondial": generate_mondial(),
        "dblp": generate_dblp(publications=4000),
    }
    databases = {}
    for family, document in corpora.items():
        probabilistic = make_probabilistic(document, seed=673)
        validate_document(probabilistic)
        databases[family] = Database.from_document(probabilistic)
    return databases


class TestPipeline:
    def test_distributional_ratio_in_paper_range(self, mini_databases):
        for family, database in mini_databases.items():
            stats = document_stats(database.document)
            assert 0.08 <= stats.distributional_ratio <= 0.25, family

    @pytest.mark.parametrize("family", ["xmark", "mondial", "dblp"])
    def test_algorithms_agree_on_every_query(self, mini_databases,
                                             family):
        database = mini_databases[family]
        for query_id in queries_for_dataset(family):
            keywords = query_keywords(query_id)
            stack = topk_search(database, keywords, 10, "prstack")
            eager = topk_search(database, keywords, 10, "eager")
            assert [(str(r.code), round(r.probability, 9))
                    for r in stack] == \
                [(str(r.code), round(r.probability, 9))
                 for r in eager], query_id

    @pytest.mark.parametrize("family", ["xmark", "mondial", "dblp"])
    def test_queries_return_results(self, mini_databases, family):
        """Every Table III query has at least one non-zero answer on
        its corpus (the paper's workloads are never empty)."""
        database = mini_databases[family]
        for query_id in queries_for_dataset(family):
            outcome = topk_search(database, query_keywords(query_id), 10,
                                  "prstack")
            assert len(outcome) >= 1, query_id

    def test_vary_k_monotone(self, mini_databases):
        database = mini_databases["mondial"]
        keywords = query_keywords("M1")
        previous = []
        for k in (1, 5, 10, 20):
            outcome = topk_search(database, keywords, k, "eager")
            probabilities = outcome.probabilities()
            assert probabilities[:len(previous)] == previous
            previous = probabilities

    def test_results_are_ordinary_nodes_with_valid_probabilities(
            self, mini_databases):
        for family, database in mini_databases.items():
            for query_id in queries_for_dataset(family)[:2]:
                outcome = topk_search(database,
                                      query_keywords(query_id), 10)
                for result in outcome:
                    assert result.node.is_ordinary
                    assert 0.0 < result.probability <= 1.0 + 1e-9

    def test_eager_consumes_no_more_than_available(self, mini_databases):
        database = mini_databases["xmark"]
        for query_id in queries_for_dataset("xmark"):
            outcome = topk_search(database, query_keywords(query_id), 10,
                                  "eager")
            stats = outcome.stats
            assert stats["entries_consumed"] <= stats["match_entries"]


class TestPersistenceIntegration:
    def test_save_load_query_cycle(self, mini_databases, tmp_path):
        from repro import load_database, save_database
        database = mini_databases["mondial"]
        save_database(database, tmp_path / "mondial")
        loaded = load_database(tmp_path / "mondial")
        for query_id in queries_for_dataset("mondial"):
            keywords = query_keywords(query_id)
            original = topk_search(database, keywords, 5, "prstack")
            reloaded = topk_search(loaded, keywords, 5, "prstack")
            assert [(str(r.code), round(r.probability, 9))
                    for r in original] == \
                [(str(r.code), round(r.probability, 9))
                 for r in reloaded], query_id
