"""Sharded corpus: build, bounds, scatter-gather merge, degradation.

The acceptance contract (docs/CORPUS.md): corpus top-k answers are
bit-identical to single-document brute force over all documents
concatenated under one synthetic root — on every executor, in every
shard completion order, and with bound-driven shard pruning active.
"""

import itertools
import json
import os
import random

import pytest

from repro import DocumentBuilder, topk_search
from repro.corpus import (CorpusService, assign_shards, build_corpus,
                          compute_bounds, concat_documents, corpus_fsck,
                          is_corpus_directory, load_corpus_manifest,
                          read_bounds)
from repro.corpus.builder import BOUNDS_FILE, CORPUS_FILE
from repro.corpus.service import (ACTION_NO_MATCH, ACTION_PRUNED,
                                  REASON_SHARD_FAILURE, _Merge)
from repro.exceptions import QueryError, StorageError
from repro.index.storage import CURRENT_FILE, Database
from repro.obs.metrics import MetricsCollector, NULL_COLLECTOR
from tests.conftest import random_pdoc

QUERY = ["k1", "k2"]


def oracle_rows(documents, keywords, k):
    """Brute force over the concatenation, synthetic root dropped."""
    database = Database.from_document(concat_documents(documents))
    outcome = topk_search(database, keywords, k + 1)
    rows = [(str(result.code), result.probability)
            for result in outcome.results
            if len(result.code.positions) >= 2]
    return rows[:k]


def corpus_rows(outcome):
    return [(str(result.code), result.probability)
            for result in outcome.results]


def random_corpus(seed, count=5, max_nodes=20):
    rng = random.Random(seed)
    return [(f"doc-{position}", random_pdoc(rng, max_nodes=max_nodes))
            for position in range(count)]


def build_tiered_docs():
    """One certain match plus two faint ones: the pruning scenario.

    The *strong* document answers ``k1 k2`` with probability 1; the
    two *weak* documents hold both keywords only under an IND edge of
    probability 0.05, so their shards' query bounds (0.05) fall below
    the k-th probability (1.0) as soon as the strong shard has been
    merged.
    """
    strong = DocumentBuilder("strong")
    strong.leaf("a", text="k1")
    strong.leaf("b", text="k2")
    documents = [("strong", strong.build())]
    for name in ("weak1", "weak2"):
        weak = DocumentBuilder(name)
        with weak.ind(prob=0.05):
            weak.leaf("a", text="k1")
            weak.leaf("b", text="k2")
        documents.append((name, weak.build()))
    return documents


# -- sharding ------------------------------------------------------------------


class TestSharding:
    def test_hash_is_stable_and_complete(self):
        names = [f"doc-{i}" for i in range(20)]
        sizes = [10] * 20
        first = assign_shards(names, sizes, 4, "hash")
        second = assign_shards(list(names), list(sizes), 4, "hash")
        assert first == second
        assert all(0 <= shard < 4 for shard in first)

    def test_size_strategy_balances_node_counts(self):
        sizes = [100, 90, 40, 30, 20, 10]
        names = [f"doc-{i}" for i in range(len(sizes))]
        assignment = assign_shards(names, sizes, 2, "size")
        loads = [0, 0]
        for size, shard in zip(sizes, assignment):
            loads[shard] += size
        assert abs(loads[0] - loads[1]) <= 40

    @pytest.mark.parametrize("names,sizes,shards,strategy,match", [
        (["a"], [1], 0, "hash", "positive"),
        (["a"], [1, 2], 2, "hash", "aligned"),
        (["a", "a"], [1, 2], 2, "hash", "unique"),
        (["a"], [1], 2, "bogus", "strategy"),
    ])
    def test_invalid_inputs(self, names, sizes, shards, strategy,
                            match):
        with pytest.raises(QueryError, match=match):
            assign_shards(names, sizes, shards, strategy)


# -- builder -------------------------------------------------------------------


class TestBuilder:
    def test_build_and_load_roundtrip(self, tmp_path):
        directory = str(tmp_path / "corpus")
        documents = random_corpus(7)
        manifest = build_corpus(documents, directory, shards=3)
        assert is_corpus_directory(directory)
        loaded = load_corpus_manifest(directory)
        assert loaded == manifest
        assert loaded.shard_count == 3
        names = sorted(doc.name for doc in loaded.documents)
        assert names == sorted(name for name, _ in documents)
        # Global positions follow the input order, 1-based.
        by_name = {doc.name: doc for doc in loaded.documents}
        for position, (name, _) in enumerate(documents, start=1):
            assert by_name[name].global_position == position

    def test_every_shard_is_a_searchable_database(self, tmp_path):
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(random_corpus(11), directory, shards=4)
        for shard in range(manifest.shard_count):
            database = Database
            from repro.index.storage import load_database
            database = load_database(manifest.shard_dir(shard))
            assert database.document is not None

    def test_bounds_persisted_and_validated(self, tmp_path):
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(build_tiered_docs(), directory,
                                shards=3, strategy="size")
        payload = read_bounds(manifest.shard_dir(0))
        assert payload is not None
        assert payload["generation"] == "g00000001"
        assert 0.0 < payload["max_path_probability"] <= 1.0
        assert set(payload["terms"]) >= {"k1", "k2"}

    def test_corrupt_bounds_degrade_to_none(self, tmp_path):
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(random_corpus(3, count=2), directory,
                                shards=1)
        path = os.path.join(manifest.shard_dir(0), BOUNDS_FILE)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert read_bounds(manifest.shard_dir(0)) is None

    def test_union_bound_upper_bounds_answers(self, tmp_path):
        documents = random_corpus(13, count=3)
        database = Database.from_document(concat_documents(documents))
        bounds, best = compute_bounds(database.index)
        assert 0.0 < best <= 1.0
        for term, bound in bounds.items():
            outcome = topk_search(database, [term], 3)
            for result in outcome.results:
                assert result.probability <= bound + 1e-12

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StorageError, match="not a corpus"):
            load_corpus_manifest(str(tmp_path))

    def test_malformed_manifest_raises(self, tmp_path):
        path = tmp_path / CORPUS_FILE
        path.write_text(json.dumps({"format": "repro.corpus/v1",
                                    "shards": ["s0000"],
                                    "documents": [{"name": "x"}]}))
        with pytest.raises(StorageError, match="corrupt corpus"):
            load_corpus_manifest(str(tmp_path))

    def test_concat_preserves_in_document_answers(self):
        documents = random_corpus(17, count=3)
        combined = concat_documents(documents)
        database = Database.from_document(combined)
        outcome = topk_search(database, QUERY, 50)
        # A merged code is the in-document code with the document's
        # child position spliced in as component two; strip it to
        # recover ``(document, local code)``.
        merged = {}
        for result in outcome.results:
            parts = str(result.code).split(".")
            if len(parts) < 2:
                continue  # the synthetic root
            local = ".".join([parts[0]] + parts[2:])
            merged[(int(parts[1]), local)] = result.probability
        for position, (_, document) in enumerate(documents, start=1):
            single = Database.from_document(document.copy())
            local = topk_search(single, QUERY, 50)
            assert local.results, position
            for result in local.results:
                key = (position, str(result.code))
                assert merged.get(key) == result.probability, key


# -- oracle identity -----------------------------------------------------------


class TestOracleIdentity:
    @pytest.mark.parametrize("seed", range(6))
    def test_serial_and_thread_match_brute_force(self, seed, tmp_path):
        documents = random_corpus(seed, count=4 + seed % 3)
        directory = str(tmp_path / "corpus")
        strategy = "hash" if seed % 2 else "size"
        build_corpus(documents, directory, shards=3, strategy=strategy)
        service = CorpusService(directory)
        for keywords in (QUERY, ["k1"]):
            for k in (1, 3, 10):
                expected = oracle_rows(documents, keywords, k)
                for executor in ("serial", "thread"):
                    outcome = service.search(keywords, k=k,
                                             executor=executor,
                                             workers=3)
                    assert corpus_rows(outcome) == expected, \
                        (seed, keywords, k, executor)

    def test_process_executor_matches_brute_force(self, tmp_path):
        documents = random_corpus(99, count=4)
        directory = str(tmp_path / "corpus")
        build_corpus(documents, directory, shards=2)
        service = CorpusService(directory)
        expected = oracle_rows(documents, QUERY, 5)
        outcome = service.search(QUERY, k=5, executor="process",
                                 workers=2)
        assert corpus_rows(outcome) == expected

    def test_prune_fires_and_answers_are_unchanged(self, tmp_path):
        documents = build_tiered_docs()
        directory = str(tmp_path / "corpus")
        # One document per shard, so the weak shards are prunable.
        build_corpus(documents, directory, shards=3, strategy="size")
        collector = MetricsCollector()
        service = CorpusService(directory, collector=collector)
        outcome = service.search(QUERY, k=1, executor="serial")
        stats = outcome.stats["corpus"]
        assert stats[ACTION_PRUNED] == 2
        assert stats["searched"] == 1
        assert corpus_rows(outcome) == oracle_rows(documents, QUERY, 1)
        snapshot = collector.snapshot()
        assert snapshot["counters"]["corpus.shards_pruned"] == 2

    def test_absent_term_shards_skip_as_no_match(self, tmp_path):
        strong = DocumentBuilder("strong")
        strong.leaf("a", text="k1 k2")
        empty = DocumentBuilder("empty")
        empty.leaf("b", text="zz")
        documents = [("strong", strong.build()),
                     ("empty", empty.build())]
        directory = str(tmp_path / "corpus")
        build_corpus(documents, directory, shards=2, strategy="size")
        service = CorpusService(directory)
        outcome = service.search(QUERY, k=2)
        stats = outcome.stats["corpus"]
        assert stats[ACTION_NO_MATCH] == 1
        assert corpus_rows(outcome) == oracle_rows(documents, QUERY, 2)

    def test_rejects_bad_queries_and_executors(self, tmp_path):
        directory = str(tmp_path / "corpus")
        build_corpus(random_corpus(1, count=2), directory, shards=1)
        service = CorpusService(directory)
        with pytest.raises(QueryError):
            service.search([])
        with pytest.raises(QueryError, match="executor"):
            service.search(QUERY, executor="carrier-pigeon")
        with pytest.raises(QueryError, match="workers"):
            service.search(QUERY, executor="thread", workers=0)


# -- merge order independence (the tie-break satellite) ------------------------


class TestMergeOrderIndependence:
    def test_every_completion_order_yields_identical_answers(
            self, tmp_path):
        """The retained set of the global heap is a pure function of
        the offered multiset: permuting shard completion order — ties
        included — never changes the merged top-k."""
        documents = []
        for name in ("one", "two", "three"):
            builder = DocumentBuilder(name)
            builder.leaf("a", text="k1 k2")  # three prob-ties
            with builder.ind(prob=0.4):
                builder.leaf("b", text="k1 k2")
            documents.append((name, builder.build()))
        directory = str(tmp_path / "corpus")
        build_corpus(documents, directory, shards=3, strategy="size")
        service = CorpusService(directory)
        k = 4
        shards = [shard for shard in service._shards
                  if shard.service is not None]
        per_shard = [(shard,
                      shard.service.search(QUERY, k=k + 1))
                     for shard in shards]

        signatures = set()
        for ordering in itertools.permutations(per_shard):
            merge = _Merge(k, NULL_COLLECTOR)
            for shard, outcome in ordering:
                merge.absorb(shard, 1.0, outcome)
            merged = merge.outcome(len(shards), "serial", 1, "eager",
                                   "slca", k, QUERY, {})
            signatures.add(tuple(corpus_rows(merged)))
        assert len(signatures) == 1
        only = list(signatures)[0]
        assert list(only) == oracle_rows(documents, QUERY, k)
        # Ties broken by document order: probabilities descending,
        # equal probabilities in ascending Dewey order.
        probabilities = [row[1] for row in only]
        assert probabilities == sorted(probabilities, reverse=True)
        tied = [row[0] for row in only if row[1] == probabilities[0]]
        assert tied == sorted(
            tied, key=lambda code: [int(p) for p in code.split(".")])

    def test_executor_permutation_on_random_corpus(self, tmp_path):
        documents = random_corpus(23, count=6, max_nodes=16)
        directory = str(tmp_path / "corpus")
        build_corpus(documents, directory, shards=3)
        service = CorpusService(directory)
        expected = oracle_rows(documents, QUERY, 5)
        for trial in range(4):
            outcome = service.search(QUERY, k=5, executor="thread",
                                     workers=3)
            assert corpus_rows(outcome) == expected, trial


# -- degradation, reload, fsck -------------------------------------------------


class TestDegradation:
    def corrupt_shard(self, manifest, shard):
        os.remove(os.path.join(manifest.shard_dir(shard),
                               CURRENT_FILE))

    def test_downed_shard_degrades_to_partial_answers(self, tmp_path):
        documents = build_tiered_docs()
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(documents, directory, shards=3,
                                strategy="size")
        weak_shard = next(doc.shard for doc in manifest.documents
                          if doc.name == "weak1")
        self.corrupt_shard(manifest, weak_shard)
        service = CorpusService(directory)
        outcome = service.search(QUERY, k=10)
        stats = outcome.stats["corpus"]
        assert outcome.partial
        assert outcome.termination_reason == REASON_SHARD_FAILURE
        assert stats["failed"] == 1
        healthy = [(name, document)
                   for name, document in documents if name != "weak1"]
        # The healthy shards' answers still come back, globally coded.
        healthy_rows = oracle_rows(documents, QUERY, 10)
        observed = corpus_rows(outcome)
        assert observed and set(observed) < set(healthy_rows)

    def test_reload_heals_a_restored_shard(self, tmp_path):
        documents = build_tiered_docs()
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(documents, directory, shards=3,
                                strategy="size")
        current = os.path.join(manifest.shard_dir(1), CURRENT_FILE)
        with open(current, "r", encoding="utf-8") as handle:
            saved = handle.read()
        os.remove(current)
        service = CorpusService(directory)
        snapshot = service.health_snapshot()
        down = [block for block in snapshot["shards"]
                if not block["ok"]]
        assert len(down) == 1 and down[0]["error"]
        with open(current, "w", encoding="utf-8") as handle:
            handle.write(saved)
        state = service.reload()
        assert state.epoch >= 1
        snapshot = service.health_snapshot()
        assert all(block["ok"] for block in snapshot["shards"])
        outcome = service.search(QUERY, k=10)
        assert not outcome.partial
        assert corpus_rows(outcome) == oracle_rows(documents, QUERY,
                                                   10)

    def test_all_shards_down_raises_on_reload(self, tmp_path):
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(random_corpus(3, count=2), directory,
                                shards=1)
        self.corrupt_shard(manifest, 0)
        service = CorpusService(directory)
        with pytest.raises(StorageError, match="no shard is serving"):
            service.reload()

    def test_corpus_fsck_reports_per_shard(self, tmp_path):
        directory = str(tmp_path / "corpus")
        build_corpus(random_corpus(5, count=3), directory, shards=2)
        reports = corpus_fsck(directory)
        assert [name for name, _ in reports] == ["s0000", "s0001"]
        assert all(report.clean for _, report in reports)

    def test_quarantined_shard_does_not_fail_the_query(self, tmp_path):
        """fsck --repair on a damaged shard quarantines it; the corpus
        keeps answering from the healthy shards (partial outcome)."""
        from repro.index.storage import resolve_snapshot
        documents = build_tiered_docs()
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(documents, directory, shards=3,
                                strategy="size")
        strong_shard = next(doc.shard for doc in manifest.documents
                            if doc.name == "strong")
        victim = next(position for position in range(3)
                      if position != strong_shard)
        snapshot_dir, _ = resolve_snapshot(manifest.shard_dir(victim))
        postings = os.path.join(snapshot_dir, "postings.jsonl")
        with open(postings, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(postings, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write("{torn-final-line")
        reports = dict(corpus_fsck(directory, repair=True))
        assert not reports[manifest.shard_names[victim]].clean
        service = CorpusService(directory)
        outcome = service.search(QUERY, k=5)
        rows = corpus_rows(outcome)
        assert rows  # the strong shard still answers
        assert rows[0][1] == 1.0

    def test_storage_stats_aggregate_shards(self, tmp_path):
        directory = str(tmp_path / "corpus")
        build_corpus(random_corpus(29, count=4), directory, shards=2)
        service = CorpusService(directory)
        stats = service.storage_stats()
        assert stats["generation"].startswith("corpus-2x-")
        assert stats["epoch"] == 1
        assert len(stats["shards"]) == 2
        state = service.reload()
        assert state.epoch == 2
        assert service.storage_stats()["epoch"] == 2

    def test_batch_search_aggregates_corpus_stats(self, tmp_path):
        directory = str(tmp_path / "corpus")
        documents = random_corpus(31, count=4)
        build_corpus(documents, directory, shards=2)
        service = CorpusService(directory)
        batch = service.batch_search([QUERY, ["k1"]], k=3)
        assert batch.stats["queries"] == 2
        assert batch.stats["corpus"]["searched"] >= 1
        expected = oracle_rows(documents, QUERY, 3)
        assert corpus_rows(batch.outcomes[0]) == expected


# -- serving a corpus ----------------------------------------------------------


class TestCorpusServing:
    @pytest.fixture
    def corpus_server(self, tmp_path):
        from repro.serve import ServeConfig, start_in_thread
        directory = str(tmp_path / "corpus")
        documents = build_tiered_docs()
        build_corpus(documents, directory, shards=3, strategy="size")
        service = CorpusService(directory,
                                collector=MetricsCollector())
        handle = start_in_thread(service, ServeConfig())
        yield handle, documents
        handle.stop()

    def request(self, port, method, path, payload=None):
        import http.client
        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=30)
        try:
            body = (json.dumps(payload).encode()
                    if payload is not None else None)
            connection.request(method, path, body=body,
                               headers={"Content-Type":
                                        "application/json"})
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_search_carries_corpus_stats(self, corpus_server):
        handle, documents = corpus_server
        status, payload = self.request(
            handle.port, "POST", "/search",
            {"keywords": QUERY, "k": 1})
        assert status == 200
        rows = [(row["code"], row["probability"])
                for row in payload["results"]]
        assert rows == oracle_rows(documents, QUERY, 1)
        assert payload["corpus"]["pruned"] == 2

    def test_health_lists_shard_generations(self, corpus_server):
        handle, _ = corpus_server
        status, payload = self.request(handle.port, "GET", "/health")
        assert status == 200
        assert payload["generation"].startswith("corpus-3x-")
        shards = payload["shards"]
        assert [block["shard"] for block in shards] == \
            ["s0000", "s0001", "s0002"]
        assert all(block["generation"] == "g00000001"
                   and block["epoch"] == 1 and block["ok"]
                   for block in shards)

    def test_reload_bumps_corpus_epoch(self, corpus_server):
        handle, _ = corpus_server
        status, payload = self.request(handle.port, "POST", "/reload")
        assert status == 200 and payload["epoch"] == 2
        _, health = self.request(handle.port, "GET", "/health")
        assert health["epoch"] == 2


# -- benchmark harness ---------------------------------------------------------


class TestCorpusBenchmark:
    def test_report_shape_and_validity(self, tmp_path):
        from repro.bench.corpus import (CORPUS_SCHEMA_ID,
                                        run_corpus_benchmark)
        from repro.datagen.dblp import generate_dblp
        from repro.datagen.probabilistic import make_probabilistic
        documents = []
        for position in range(3):
            seed = 673 + 101 * position
            plain = generate_dblp(publications=40, seed=seed)
            documents.append((f"dblp-{position}",
                              make_probabilistic(plain, seed=seed)))
        report = run_corpus_benchmark(
            documents, str(tmp_path / "corpus"), shards=2,
            distinct_queries=2, k=2, workers=2)
        assert report["schema"] == CORPUS_SCHEMA_ID
        assert report["identical_results"]
        assert report["corpus"]["documents"] == 3
        assert set(report["executors"]) == {"serial", "thread"}
        for phase in report["executors"].values():
            assert phase["shard_visits"] == 4 * 2  # queries x shards
            assert phase["shards_failed"] == 0
        assert report["scatter_gather_speedup"] > 0
