"""Property-based corruption fuzzing of the fsck/repair pipeline.

One hundred seeded trials: save a random p-document database, hit its
files with 1-3 random corruptions (byte flips, truncations, deletions,
appended garbage, scrambled pointers), run ``fsck --repair``, and hold
the safety property from docs/STORAGE.md:

* if fsck declares the database recovered (``document_ok``), loading
  it must yield *exactly* the pristine answers for every probe query;
* otherwise the report must say unrecoverable (nonzero exit) and the
  load must not quietly succeed with different answers.

Never a third outcome — a "repaired" database that answers wrong is
the one result the subsystem exists to rule out.
"""

import os
import random
import shutil

import pytest

from repro import Database, load_database, save_database, topk_search
from repro.exceptions import StorageError
from repro.index.fsck import fsck_database
from repro.index.storage import (CURRENT_FILE, MANIFEST_FILE,
                                 resolve_snapshot)

TRIALS = 100

PROBES = (["k1"], ["k2"], ["k1", "k2"])


def answers(database) -> list:
    rows = []
    for probe in PROBES:
        outcome = topk_search(database, probe, 5, "prstack")
        rows.append([(str(r.code), round(r.probability, 12))
                     for r in outcome])
    return rows


def _target_files(directory: str) -> list:
    """Every file a corruption may strike: data, manifest, CURRENT."""
    data_dir, _generation = resolve_snapshot(directory)
    targets = [os.path.join(directory, CURRENT_FILE),
               os.path.join(data_dir, MANIFEST_FILE)]
    targets.extend(os.path.join(data_dir, name)
                   for name in ("document.pxml", "postings.jsonl",
                                "meta.json"))
    return targets


def _corrupt_once(rng: random.Random, path: str) -> str:
    """Apply one random corruption to ``path``; returns its name."""
    operation = rng.choice(("flip", "truncate", "delete", "append",
                            "garbage"))
    if operation == "delete":
        os.remove(path)
        return operation
    with open(path, "rb") as handle:
        body = handle.read()
    if operation == "flip" and body:
        position = rng.randrange(len(body))
        body = (body[:position]
                + bytes([body[position] ^ (1 << rng.randrange(8))])
                + body[position + 1:])
    elif operation == "truncate":
        body = body[:rng.randrange(len(body) + 1)]
    elif operation == "append":
        body += bytes(rng.randrange(256) for _ in range(
            rng.randrange(1, 24)))
    else:  # garbage: overwrite a random slice
        if body:
            start = rng.randrange(len(body))
            length = rng.randrange(1, 32)
            body = (body[:start]
                    + bytes(rng.randrange(256) for _ in range(length))
                    + body[start + length:])
    with open(path, "wb") as handle:
        handle.write(body)
    return operation


@pytest.mark.parametrize("seed", range(TRIALS))
def test_fuzzed_corruption_repairs_exactly_or_reports_unrecoverable(
        seed, pdoc_factory, tmp_path):
    rng = random.Random(77000 + seed)
    document = pdoc_factory(seed=seed)
    database = Database.from_document(document)
    pristine = answers(database)
    directory = str(tmp_path / "db")
    save_database(database, directory)

    targets = _target_files(directory)
    strikes = []
    for _ in range(rng.randrange(1, 4)):
        path = rng.choice(targets)
        if not os.path.exists(path):
            continue
        strikes.append((os.path.basename(path),
                        _corrupt_once(rng, path)))
    context = f"seed={seed} strikes={strikes}"

    report = fsck_database(directory, repair=True)
    if report.document_ok:
        assert report.exit_code() == 0, context
        recovered = load_database(directory)
        assert answers(recovered) == pristine, \
            f"repair produced WRONG answers: {context}"
    else:
        assert report.exit_code() == 1, context
        assert any("UNRECOVERABLE" in line
                   for line in report.lines()), context
        with pytest.raises(StorageError):
            load_database(directory)

    # A second repair pass never makes things worse (idempotence under
    # arbitrary damage): same verdict, and a recovered database still
    # answers exactly.
    second = fsck_database(directory, repair=True)
    assert second.document_ok == report.document_ok, context
    if second.document_ok:
        assert answers(load_database(directory)) == pristine, context


def test_fuzzer_actually_recovers_some_and_rejects_some(pdoc_factory,
                                                        tmp_path):
    """Meta-check: the trial distribution covers both verdicts (a
    fuzzer whose corruptions are all fatal — or all harmless — proves
    nothing)."""
    verdicts = {True: 0, False: 0}
    for seed in range(40):
        rng = random.Random(88000 + seed)
        database = Database.from_document(pdoc_factory(seed=seed))
        directory = str(tmp_path / f"db-{seed}")
        save_database(database, directory)
        targets = _target_files(directory)
        path = rng.choice(targets)
        if os.path.exists(path):
            _corrupt_once(rng, path)
        report = fsck_database(directory, repair=True)
        verdicts[report.document_ok] += 1
        shutil.rmtree(directory)
    assert verdicts[True] > 0 and verdicts[False] > 0, verdicts
