"""Unit tests for the measurement harness and table formatting."""

import pytest

from repro.bench import (Measurement, format_series, format_table,
                         measure_callable, run_query, table2_rows,
                         table3_rows)
from repro.core.result import SearchOutcome


class TestMeasure:
    def test_run_query_returns_sane_measurement(self, figure1_db):
        measurement = run_query(figure1_db, ["k1", "k2"], 5, "prstack",
                                repeats=2)
        assert measurement.response_time_ms >= 0.0
        assert measurement.peak_memory_mb > 0.0
        assert measurement.result_count >= 1
        assert measurement.stats["algorithm"] == "prstack"
        assert "ms" in measurement.as_row()

    def test_measure_callable_counts_results(self):
        outcome = SearchOutcome(stats={"algorithm": "fake"})
        measurement = measure_callable(lambda: outcome, repeats=1)
        assert measurement.result_count == 0
        assert measurement.stats == {"algorithm": "fake"}

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            measure_callable(lambda: SearchOutcome(), repeats=0)


class TestTables:
    def test_format_table_aligns(self):
        text = format_table("Title", ["a", "long_header"],
                            [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_series(self):
        text = format_series("Fig", "k", [10, 20],
                             {"prstack": [1.5, 2.5],
                              "eager": [0.5, 1.0]}, unit="ms")
        assert "prstack (ms)" in text
        assert "2.500" in text

    def test_table3_rows_cover_all_queries(self):
        rows = table3_rows()
        assert len(rows) == 15
        assert ("X1", "United States, Graduate") in rows

    def test_table2_rows(self, figure1_db):
        rows = table2_rows({"fixture": figure1_db})
        name, total, ind, mux, ordinary = rows[0]
        assert name == "fixture"
        assert total == ind + mux + ordinary
