"""Unit tests for document encoding (Dewey codes + PrLinks)."""

import pytest

from repro import NodeType, PNode, encode_document
from repro.exceptions import EncodingError


class TestEncodeDocument:
    def test_codes_follow_figure_1b_convention(self, fragment_doc):
        encoded = encode_document(fragment_doc)
        by_label = {node.label: str(encoded.code_of(node))
                    for node in fragment_doc if node.is_ordinary}
        assert by_label["A"] == "1"
        assert by_label["C1"] == "1.M1.I1.1"
        assert by_label["D1"] == "1.M1.I1.1.M1.1"
        assert by_label["D2"] == "1.M1.I1.1.M1.I2.1"
        assert by_label["E1"] == "1.M1.I1.1.M1.I2.2"
        assert by_label["E2"] == "1.M1.I1.1.M1.3"

    def test_prlink_matches_paper_example(self, fragment_doc):
        """The paper stores D1's link as 1, 0.25, 0.6, 1, 0.5 (our
        fragment uses the same probabilities)."""
        encoded = encode_document(fragment_doc)
        d1 = fragment_doc.find_by_label("D1")[0]
        assert encoded.link_of(d1) == (1.0, 1.0, 0.25, 0.6, 1.0, 0.5)

    def test_path_probability(self, fragment_doc):
        encoded = encode_document(fragment_doc)
        c1 = fragment_doc.find_by_label("C1")[0]
        assert encoded.path_probability(encoded.code_of(c1)) == \
            pytest.approx(0.15)

    def test_codes_sorted_like_node_ids(self, figure1_doc):
        encoded = encode_document(figure1_doc)
        positions = [code.positions for code in encoded.iter_codes()]
        assert positions == sorted(positions)

    def test_node_at_round_trip(self, figure1_doc):
        encoded = encode_document(figure1_doc)
        for node in figure1_doc:
            assert encoded.node_at(encoded.code_of(node)) is node

    def test_node_at_unknown_code(self, fragment_doc):
        from repro import DeweyCode
        encoded = encode_document(fragment_doc)
        with pytest.raises(EncodingError, match="no node"):
            encoded.node_at(DeweyCode.parse("1.9.9"))
        assert not encoded.has_code(DeweyCode.parse("1.9.9"))

    def test_links_aligned_with_codes(self, figure1_doc):
        encoded = encode_document(figure1_doc)
        for node in figure1_doc:
            code = encoded.code_of(node)
            link = encoded.link_of(node)
            assert len(link) == len(code)
            assert link[0] == 1.0
            assert link[-1] == node.edge_prob

    def test_stale_document_detected(self, fragment_doc):
        fragment_doc.root.add_child(PNode("late"))
        # refresh() not called: the new node is unnumbered.
        with pytest.raises(EncodingError):
            encode_document(fragment_doc)

    def test_distributional_kinds_in_codes(self, fragment_doc):
        encoded = encode_document(fragment_doc)
        for node in fragment_doc:
            assert encoded.code_of(node).node_type is node.node_type
            if node.node_type is NodeType.MUX:
                assert str(encoded.code_of(node)).split(".")[-1][0] == "M"
