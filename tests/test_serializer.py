"""Unit tests for serializer details not covered by the parser tests."""

from repro import NodeType, parse_pxml, serialize_pxml
from repro.prxml.serializer import node_to_fragment


class TestSerializerDetails:
    def test_node_to_fragment_renders_subtree(self, fragment_doc):
        c1 = fragment_doc.find_by_label("C1")[0]
        fragment = node_to_fragment(c1)
        assert fragment.startswith("<C1")
        assert "<mux>" in fragment
        assert 'prob="0.7"' in fragment

    def test_certain_edges_have_no_prob_attribute(self):
        text = serialize_pxml(parse_pxml("<a><b>x</b></a>"))
        assert "prob" not in text

    def test_exp_children_omit_prob_attribute(self):
        """EXP children's edge probabilities are subset marginals and
        must not be re-emitted (the parser recomputes them)."""
        document = parse_pxml(
            '<a><exp subsets="1:0.5 2:0.25"><b/><c/></exp></a>')
        text = serialize_pxml(document)
        assert 'subsets="1:0.5 2:0.25"' in text
        # The only prob-like attribute is the subsets spec itself.
        assert "prob=" not in text

    def test_empty_elements_self_close(self):
        text = serialize_pxml(parse_pxml("<a><b/></a>"))
        assert "<b/>" in text

    def test_indentation_reflects_depth(self, fragment_doc):
        lines = serialize_pxml(fragment_doc).splitlines()
        assert lines[0].startswith("<A")
        assert lines[1].startswith("  <")
        assert lines[2].startswith("    <")

    def test_distributional_tags_lowercase(self, fragment_doc):
        text = serialize_pxml(fragment_doc)
        assert "<mux>" in text or "<mux " in text
        assert "<MUX" not in text
        kinds = {node.node_type for node in fragment_doc}
        assert NodeType.MUX in kinds


class TestExactProbabilityRoundTrip:
    def test_high_precision_probs_survive(self):
        from repro import DocumentBuilder
        builder = DocumentBuilder("r")
        with builder.ind(prob=0.123456789012345):
            builder.leaf("a", text="k1", prob=1 / 3)
        document = builder.build()
        reparsed = parse_pxml(serialize_pxml(document))
        ind = document.root.children[0]
        ind2 = reparsed.root.children[0]
        assert ind2.edge_prob == ind.edge_prob
        assert ind2.children[0].edge_prob == ind.children[0].edge_prob
