"""Tests for the ELCA-semantics extension (after reference [23])."""

import random

import pytest

from repro import Database, DocumentBuilder, topk_search
from repro.exceptions import QueryError
from repro.prxml.possible_worlds import DetNode
from repro.slca.deterministic import elca_of_world, slca_of_world
from tests.conftest import random_pdoc


def det(label, text=None, children=(), source_id=0):
    node = DetNode(label, text, source_id)
    node.children = list(children)
    return node


class TestDeterministicElca:
    def test_ancestor_can_also_answer(self):
        """The classic ELCA-vs-SLCA separation: a deep full match plus
        independent occurrences at the ancestor."""
        leaf = det("leaf", "k1 k2", source_id=3)
        extra1 = det("x", "k1", source_id=4)
        extra2 = det("y", "k2", source_id=5)
        root = det("r", None, [leaf, extra1, extra2], source_id=1)
        assert [n.source_id for n in slca_of_world(root, ["k1", "k2"])] \
            == [3]
        assert sorted(n.source_id
                      for n in elca_of_world(root, ["k1", "k2"])) == [1, 3]

    def test_consumed_occurrences_do_not_witness_ancestors(self):
        leaf = det("leaf", "k1 k2", source_id=3)
        extra = det("x", "k1", source_id=4)  # k2 is only below the leaf
        root = det("r", None, [leaf, extra], source_id=1)
        assert [n.source_id for n in elca_of_world(root, ["k1", "k2"])] \
            == [3]

    def test_elca_equals_slca_without_nesting(self):
        left = det("a", "k1", source_id=2)
        right = det("b", "k2", source_id=3)
        root = det("r", None, [left, right], source_id=1)
        assert [n.source_id for n in elca_of_world(root, ["k1", "k2"])] \
            == [n.source_id for n in slca_of_world(root, ["k1", "k2"])]


class TestProbabilisticElca:
    def build_separating_document(self):
        """deep <hit> carries both keywords; the root also sees k1/k2
        from independent siblings."""
        builder = DocumentBuilder("root")
        with builder.element("record"):
            builder.leaf("hit", text="k1 k2")
        with builder.ind():
            builder.leaf("a", text="k1", prob=0.5)
            builder.leaf("b", text="k2", prob=0.4)
        return Database.from_document(builder.build())

    def test_prstack_matches_world_enumeration(self):
        database = self.build_separating_document()
        oracle = topk_search(database, ["k1", "k2"], 10,
                             "possible_worlds", semantics="elca")
        stack = topk_search(database, ["k1", "k2"], 10, "prstack",
                            semantics="elca")
        assert [(str(r.code), round(r.probability, 10)) for r in stack] \
            == [(str(r.code), round(r.probability, 10)) for r in oracle]
        # The root answers with probability 0.2 (both extras present)
        # even though <hit> always answers below it.
        by_code = {str(r.code): r.probability for r in stack}
        assert by_code["1.1.1"] == pytest.approx(1.0)
        assert by_code["1"] == pytest.approx(0.2)

    def test_elca_never_below_slca_probability(self, figure1_db):
        """Consuming instead of excluding can only help ancestors:
        every node's ELCA probability >= its SLCA probability."""
        slca = topk_search(figure1_db, ["k1", "k2"], 100, "prstack")
        elca = topk_search(figure1_db, ["k1", "k2"], 100, "prstack",
                           semantics="elca")
        slca_by_code = {str(r.code): r.probability for r in slca}
        elca_by_code = {str(r.code): r.probability for r in elca}
        for code, probability in slca_by_code.items():
            assert elca_by_code.get(code, 0.0) >= probability - 1e-12

    @pytest.mark.parametrize("seed", range(25))
    def test_random_documents_match_oracle(self, seed):
        rng = random.Random(seed * 193 + 7)
        document = random_pdoc(rng, max_nodes=16)
        if document.theoretical_world_count() > 50_000:
            pytest.skip("world space too large")
        database = Database.from_document(document)
        for keywords in (["k1", "k2"], ["k1"]):
            oracle = topk_search(database, keywords, 50,
                                 "possible_worlds", semantics="elca")
            stack = topk_search(database, keywords, 50, "prstack",
                                semantics="elca")
            assert [(str(r.code), round(r.probability, 9))
                    for r in stack] == \
                [(str(r.code), round(r.probability, 9))
                 for r in oracle], (seed, keywords)


class TestApiSurface:
    def test_eager_rejects_elca(self, figure1_db):
        with pytest.raises(QueryError, match="SLCA-specific"):
            topk_search(figure1_db, ["k1"], 3, "eager",
                        semantics="elca")

    def test_unknown_semantics(self, figure1_db):
        with pytest.raises(QueryError, match="semantics"):
            topk_search(figure1_db, ["k1"], 3, "prstack",
                        semantics="vlca")

    def test_stats_record_semantics(self, figure1_db):
        outcome = topk_search(figure1_db, ["k1"], 3, "prstack",
                              semantics="elca")
        assert outcome.stats["semantics"] == "elca"
