"""Unit tests for the naive possible-world baseline search."""

import pytest

from repro import Database, possible_worlds_search
from repro.exceptions import ModelError, QueryError


class TestPossibleWorldsSearch:
    def test_example_6_value(self, fragment_db):
        outcome = possible_worlds_search(fragment_db.index,
                                         ["k1", "k2"], k=5)
        assert len(outcome) == 1
        assert str(outcome.results[0].code) == "1.M1.I1.1"
        assert outcome.results[0].probability == pytest.approx(0.00945)

    def test_world_count_reported(self, fragment_db):
        outcome = possible_worlds_search(fragment_db.index, ["k1"], k=3)
        # Figure 2's six C1-subtree worlds plus the merged no-C1 world.
        assert outcome.stats["worlds"] == 7

    def test_manual_two_branch_document(self):
        """Root with independent k1 (p=0.5) and k2 (p=0.4) leaves: the
        root is the SLCA exactly when both leaves exist."""
        from repro import DocumentBuilder
        builder = DocumentBuilder("r")
        with builder.ind():
            builder.leaf("a", text="k1", prob=0.5)
            builder.leaf("b", text="k2", prob=0.4)
        database = Database.from_document(builder.build())
        outcome = possible_worlds_search(database.index, ["k1", "k2"], 5)
        assert len(outcome) == 1
        assert str(outcome.results[0].code) == "1"
        assert outcome.results[0].probability == pytest.approx(0.2)

    def test_k_truncation(self, figure1_db):
        full = possible_worlds_search(figure1_db.index, ["k1"], k=100)
        top = possible_worlds_search(figure1_db.index, ["k1"], k=2)
        assert len(top) == 2
        assert top.probabilities() == full.probabilities()[:2]
        assert full.stats["distinct_answers"] >= 2

    def test_invalid_k(self, fragment_db):
        with pytest.raises(QueryError):
            possible_worlds_search(fragment_db.index, ["k1"], k=0)

    def test_max_worlds_guard(self, fragment_db):
        with pytest.raises(ModelError, match="max_worlds"):
            possible_worlds_search(fragment_db.index, ["k1"], k=1,
                                   max_worlds=2)

    def test_results_carry_nodes(self, fragment_db):
        outcome = possible_worlds_search(fragment_db.index,
                                         ["k1", "k2"], k=1)
        assert outcome.results[0].node is not None
        assert outcome.results[0].node.label == "C1"
