"""Unit tests for the datagen vocabulary helpers."""

import random

from repro.datagen import words


class TestSentence:
    def test_length_and_pool(self):
        rng = random.Random(1)
        text = words.sentence(rng, 5)
        parts = text.split()
        assert len(parts) == 5
        assert all(part in words.FILLER_WORDS for part in parts)


class TestSkewedPick:
    def test_front_of_pool_dominates(self):
        rng = random.Random(2)
        pool = [f"w{i}" for i in range(20)]
        counts = {}
        for _ in range(4000):
            pick = words.skewed_pick(rng, pool)
            counts[pick] = counts.get(pick, 0) + 1
        assert counts.get("w0", 0) > counts.get("w10", 0)
        assert counts.get("w0", 0) > 1000

    def test_never_out_of_range(self):
        rng = random.Random(3)
        pool = ["only"]
        assert all(words.skewed_pick(rng, pool) == "only"
                   for _ in range(100))


class TestTitle:
    def test_term_frequencies_controlled(self):
        """Each topical term's document frequency tracks its configured
        inclusion probability (the property the DBLP workload relies
        on for Figure 4(e)'s match/seed regime)."""
        rng = random.Random(4)
        titles = [words.title(rng) for _ in range(6000)]
        for term, probability in dict(words.TITLE_TERMS).items():
            frequency = sum(term in title.split()
                            for title in titles) / len(titles)
            assert abs(frequency - probability) < 0.03, term

    def test_co_occurrence_rarer_than_terms(self):
        rng = random.Random(5)
        titles = [words.title(rng) for _ in range(4000)]
        def df(term):
            return sum(term in title.split() for title in titles)
        triple = sum(all(term in title.split()
                         for term in ("xml", "keyword", "query"))
                     for title in titles)
        assert 0 < triple < min(df("xml"), df("keyword"), df("query"))


class TestUniqueNames:
    def test_count_and_distinctness(self):
        rng = random.Random(6)
        names = words.unique_names(rng, 50)
        assert len(names) == 50
        assert len(set(names)) == 50
