"""Unit tests for repro.obs.spans: deterministic ids, nesting,
cross-process adoption, validation and rendering."""

import threading

import pytest

from repro.obs.recorder import FlightRecorder
from repro.obs.spans import (NULL_TRACER, Span, SpanError, SpanTracer,
                             derive_trace_id, load_spans,
                             render_span_tree, validate_spans,
                             write_spans)


class TestDeriveTraceId:
    def test_deterministic(self):
        assert derive_trace_id("a", 1, "b") == derive_trace_id("a", 1, "b")

    def test_distinct_workloads_distinct_ids(self):
        assert derive_trace_id("a", "b") != derive_trace_id("ab")
        assert derive_trace_id("a", 1) != derive_trace_id("a", 2)

    def test_shape(self):
        trace_id = derive_trace_id("workload")
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex


class TestStructuralIds:
    def test_root_and_children(self):
        tracer = SpanTracer(trace_id="t")
        with tracer.span("batch") as batch:
            with tracer.span("chunk"):
                pass
            with tracer.span("chunk"):
                pass
        assert batch.span_id == "s0"
        ids = {span.name: span.span_id for span in tracer.finished[:-1]}
        assert set(span.span_id for span in tracer.finished) == \
            {"s0", "s0.0", "s0.1"}
        assert ids  # two chunks filed before the batch

    def test_extra_roots_get_r_suffix(self):
        tracer = SpanTracer(trace_id="t")
        first = tracer.finish(tracer.begin("one"))
        second = tracer.finish(tracer.begin("two"))
        assert first.span_id == "s0"
        assert second.span_id == "s0.r1"

    def test_worker_root_addressing(self):
        # A worker tracer seeded with the coordinator's chunk span id
        # produces spans that already point into the coordinator tree.
        tracer = SpanTracer(trace_id="t", root_id="s0.2.w",
                            root_parent="s0.2")
        with tracer.span("worker"):
            with tracer.span("query"):
                pass
        exported = {record["span_id"]: record
                    for record in tracer.export()}
        assert exported["s0.2.w"]["parent_id"] == "s0.2"
        assert exported["s0.2.w.0"]["parent_id"] == "s0.2.w"

    def test_nesting_follows_thread_current(self):
        tracer = SpanTracer(trace_id="t")
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert tracer.current() is None


class TestLifecycle:
    def test_error_status_and_reraise(self):
        tracer = SpanTracer(trace_id="t")
        with pytest.raises(ValueError):
            with tracer.span("query"):
                raise ValueError("boom")
        span = tracer.finished[0]
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError"

    def test_finish_attrs_and_status(self):
        tracer = SpanTracer(trace_id="t")
        span = tracer.begin("chunk", queries=3)
        tracer.finish(span, status="partial", pid=42)
        assert span.attrs == {"queries": 3, "pid": 42}
        assert span.status == "partial"
        assert span.duration_ms >= 0

    def test_bump_accumulates(self):
        span = Span("t", "s0", None, "query", 0.0)
        span.bump("cache.hits")
        span.bump("cache.hits")
        span.bump("entries", 10)
        assert span.attrs == {"cache.hits": 2, "entries": 10}

    def test_max_spans_drops_and_counts(self):
        tracer = SpanTracer(trace_id="t", max_spans=2)
        for _ in range(5):
            tracer.finish(tracer.begin("s"))
        assert len(tracer.finished) == 2
        assert tracer.dropped == 3

    def test_finish_feeds_recorder(self):
        recorder = FlightRecorder(capacity=8)
        tracer = SpanTracer(trace_id="t", recorder=recorder)
        with tracer.span("query"):
            pass
        records = recorder.snapshot()
        assert records[0]["kind"] == "span"
        assert records[0]["name"] == "query"
        assert records[0]["span_id"] == "s0"


class TestThreadSafety:
    def test_threads_nest_independently(self):
        tracer = SpanTracer(trace_id="t")
        root = tracer.begin("batch")
        errors = []

        def work(index):
            try:
                with tracer.span("chunk", parent=root) as chunk:
                    with tracer.span("query") as query:
                        assert query.parent_id == chunk.span_id
            except AssertionError as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.finish(root)
        assert not errors
        chunks = [s for s in tracer.finished if s.name == "chunk"]
        assert len(chunks) == 4
        assert len({s.span_id for s in chunks}) == 4
        for query in (s for s in tracer.finished
                      if s.name == "query"):
            assert query.parent_id in {c.span_id for c in chunks}


class TestAdoption:
    def worker_records(self, chunk_id="s0.1"):
        worker = SpanTracer(trace_id="t", root_id=f"{chunk_id}.w",
                            root_parent=chunk_id)
        with worker.span("worker"):
            with worker.span("query"):
                pass
        return worker.export()

    def test_adopt_shifts_clock_and_counts(self):
        coordinator = SpanTracer(trace_id="t")
        chunk = coordinator.begin("chunk")
        records = self.worker_records()
        base = records[0]["start_ms"]
        adopted = coordinator.adopt(records, parent=chunk,
                                    shift_ms=100.0)
        assert adopted == len(records)
        shifted = [s for s in coordinator.finished
                   if s.span_id == "s0.1.w"][0]
        assert shifted.start_ms == pytest.approx(base + 100.0)

    def test_adopt_reparents_only_orphans(self):
        coordinator = SpanTracer(trace_id="t")
        chunk = coordinator.begin("chunk")
        orphan = Span("t", "x0", None, "loose", 0.0).as_dict()
        coordinator.adopt([orphan], parent=chunk)
        assert coordinator.finished[0].parent_id == chunk.span_id
        wired = self.worker_records()
        coordinator.adopt(wired, parent=chunk)
        roots = [s for s in coordinator.finished
                 if s.span_id == "s0.1.w"]
        assert roots[0].parent_id == "s0.1"  # pre-wired, untouched

    def test_adopted_tree_validates(self):
        coordinator = SpanTracer(trace_id="t")
        with coordinator.span("batch") as batch:
            chunk = coordinator.begin("chunk", parent=batch)
            coordinator.adopt(self.worker_records(chunk.span_id),
                              parent=chunk, shift_ms=chunk.start_ms)
            coordinator.finish(chunk)
        validate_spans(coordinator.export())


class TestExportAndValidate:
    def test_export_order_deterministic(self):
        tracer = SpanTracer(trace_id="t")
        with tracer.span("batch"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        exported = tracer.export()
        assert exported == tracer.export()
        starts = [record["start_ms"] for record in exported]
        assert starts == sorted(starts)

    def test_validate_rejects_non_list(self):
        with pytest.raises(SpanError, match="must be a list"):
            validate_spans({"spans": []})

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(SpanError, match="trace_id"):
            validate_spans([{"span_id": "s0", "name": "x",
                             "start_ms": 0, "duration_ms": 0}])
        with pytest.raises(SpanError, match="start_ms"):
            validate_spans([{"trace_id": "t", "span_id": "s0",
                             "name": "x", "duration_ms": 0}])

    def test_validate_rejects_duplicate_ids(self):
        record = Span("t", "s0", None, "x", 0.0).as_dict()
        with pytest.raises(SpanError, match="duplicate span id"):
            validate_spans([record, dict(record)])

    def test_validate_rejects_mixed_traces(self):
        left = Span("t1", "s0", None, "x", 0.0).as_dict()
        right = Span("t2", "s1", None, "x", 0.0).as_dict()
        with pytest.raises(SpanError, match="mixes"):
            validate_spans([left, right])

    def test_validate_rejects_unresolvable_parent(self):
        record = Span("t", "s0", "ghost", "x", 0.0).as_dict()
        with pytest.raises(SpanError, match="unresolvable parent"):
            validate_spans([record])

    def test_roundtrip_through_jsonl(self, tmp_path):
        tracer = SpanTracer(trace_id="t")
        with tracer.span("batch", k=3):
            with tracer.span("query"):
                pass
        path = str(tmp_path / "spans.jsonl")
        exported = tracer.export()
        write_spans(exported, path)
        assert validate_spans(load_spans(path)) == exported

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(SpanError, match="not JSON"):
            load_spans(str(path))


class TestRendering:
    def test_tree_indents_children(self):
        tracer = SpanTracer(trace_id="t")
        with tracer.span("batch"):
            with tracer.span("query", terms="k1 k2"):
                pass
        lines = render_span_tree(tracer.export())
        assert len(lines) == 2
        assert "batch" in lines[0]
        assert "  query" in lines[1]
        assert "terms=k1 k2" in lines[1]

    def test_elision_is_reported(self):
        tracer = SpanTracer(trace_id="t")
        for _ in range(5):
            tracer.finish(tracer.begin("s"))
        lines = render_span_tree(tracer.export(), limit=2)
        assert lines[-1] == "  ... 3 more span(s) not shown"

    def test_empty_dump(self):
        assert render_span_tree([]) == ["  (no spans recorded)"]


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.begin("x") is None
        assert NULL_TRACER.current() is None
        with NULL_TRACER.span("x") as span:
            assert span is None
        assert NULL_TRACER.adopt([{"span_id": "s0"}]) == 0
        assert NULL_TRACER.export() == []
