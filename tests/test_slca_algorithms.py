"""Cross-checks of the deterministic SLCA algorithms (substrate [12]).

Indexed Lookup Eager, Scan Eager and the stack-based scan must agree
with each other and with an independent postorder brute force, on the
paper fixtures and on seeded random documents.
"""

import random

import pytest

from repro import build_index, encode_document
from repro.index.matchlist import build_match_entries, keyword_code_lists
from repro.index.tokenizer import node_terms
from repro.slca import (indexed_lookup_eager, scan_eager, stack_based_slca)
from repro.slca.base import remove_ancestors
from tests.conftest import random_pdoc


def brute_force_slca(document, terms):
    """Independent reference: postorder subtree masks on the skeleton."""
    full = (1 << len(terms)) - 1
    masks = {}
    answers = []
    for node in document.iter_postorder():
        mask = 0
        own = set(node_terms(node))
        for bit, term in enumerate(terms):
            if term in own:
                mask |= 1 << bit
        child_full = False
        for child in node.children:
            mask |= masks[child.node_id]
            if masks[child.node_id] == full:
                child_full = True
        masks[node.node_id] = mask
        if full and mask == full and not child_full:
            answers.append(node)
    return answers


def all_algorithms(document, keywords):
    encoded = encode_document(document)
    index = build_index(encoded)
    terms, code_lists = keyword_code_lists(index, keywords)
    _, entries = build_match_entries(index, keywords)
    expected = sorted(
        encoded.code_of(node).positions
        for node in brute_force_slca(document, terms))
    results = {
        "indexed_lookup": indexed_lookup_eager(code_lists),
        "scan_eager": scan_eager(code_lists),
        "stack_based": stack_based_slca(entries, len(terms)),
    }
    return expected, {name: sorted(code.positions for code in codes)
                      for name, codes in results.items()}


class TestAgainstBruteForce:
    def test_figure1_document(self, figure1_doc):
        expected, results = all_algorithms(figure1_doc, ["k1", "k2"])
        for name, got in results.items():
            assert got == expected, name

    def test_single_keyword(self, figure1_doc):
        expected, results = all_algorithms(figure1_doc, ["k1"])
        for name, got in results.items():
            assert got == expected, name

    def test_missing_keyword_gives_nothing(self, figure1_doc):
        _, results = all_algorithms(figure1_doc, ["k1", "zebra"])
        for name, got in results.items():
            assert got == [], name

    @pytest.mark.parametrize("seed", range(40))
    def test_random_documents(self, seed):
        rng = random.Random(seed)
        document = random_pdoc(rng, max_nodes=40,
                               keywords=("k1", "k2", "k3"))
        for keywords in (["k1", "k2"], ["k1"], ["k1", "k2", "k3"]):
            expected, results = all_algorithms(document, keywords)
            for name, got in results.items():
                assert got == expected, (name, seed, keywords)


class TestRemoveAncestors:
    def test_keeps_deepest(self):
        from repro import DeweyCode
        codes = [DeweyCode.parse(text)
                 for text in ("1", "1.2", "1.2.3", "1.3")]
        kept = remove_ancestors(codes)
        assert [str(code) for code in kept] == ["1.2.3", "1.3"]

    def test_duplicates_collapse(self):
        from repro import DeweyCode
        codes = [DeweyCode.parse("1.2"), DeweyCode.parse("1.2")]
        assert len(remove_ancestors(codes)) == 1

    def test_unsorted_input_accepted(self):
        from repro import DeweyCode
        codes = [DeweyCode.parse(text) for text in ("1.3", "1.2.3", "1.2")]
        kept = remove_ancestors(codes)
        assert [str(code) for code in kept] == ["1.2.3", "1.3"]
