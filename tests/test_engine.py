"""Unit tests for the shared bottom-up stack engine."""

import pytest

from repro import DeweyCode, build_index, encode_document
from repro.core.distribution import DistTable
from repro.core.engine import StackEngine, StackItem
from repro.exceptions import ReproError
from repro.index.matchlist import build_match_entries


def collect_sink():
    results = []
    return results, lambda code, prob: results.append((str(code), prob))


def fragment_items(fragment_doc, keywords=("k1", "k2")):
    index = build_index(encode_document(fragment_doc))
    _, entries = build_match_entries(index, list(keywords))
    return [StackItem(e.code, e.link, e.mask) for e in entries]


class TestWholeDocumentRuns:
    def test_fragment_harvests_c1(self, fragment_doc):
        results, sink = collect_sink()
        engine = StackEngine(0b11, sink)
        for item in fragment_items(fragment_doc):
            engine.feed(item)
        engine.finish()
        assert results == [("1.M1.I1.1", pytest.approx(0.00945))]
        assert engine.results_emitted == 1

    def test_no_items_no_results(self):
        results, sink = collect_sink()
        engine = StackEngine(0b1, sink)
        engine.finish()
        assert results == []

    def test_single_match_at_root(self):
        results, sink = collect_sink()
        engine = StackEngine(0b1, sink)
        engine.feed(StackItem(DeweyCode.parse("1"), (1.0,), 0b1))
        engine.finish()
        assert results == [("1", pytest.approx(1.0))]


class TestInputValidation:
    def test_out_of_order_rejected(self):
        _, sink = collect_sink()
        engine = StackEngine(0b1, sink)
        engine.feed(StackItem(DeweyCode.parse("1.2"), (1.0, 1.0), 0b1))
        with pytest.raises(ReproError, match="document order"):
            engine.feed(StackItem(DeweyCode.parse("1.1"), (1.0, 1.0), 0b1))

    def test_duplicate_rejected(self):
        _, sink = collect_sink()
        engine = StackEngine(0b1, sink)
        engine.feed(StackItem(DeweyCode.parse("1.2"), (1.0, 1.0), 0b1))
        with pytest.raises(ReproError, match="document order"):
            engine.feed(StackItem(DeweyCode.parse("1.2"), (1.0, 1.0), 0b1))

    def test_item_outside_context_rejected(self):
        _, sink = collect_sink()
        engine = StackEngine(0b1, sink, context_length=2)
        with pytest.raises(ReproError, match="outside"):
            engine.feed(StackItem(DeweyCode.parse("1.2"), (1.0, 1.0), 0b1))

    def test_preset_with_mask_rejected(self):
        with pytest.raises(ReproError):
            StackItem(DeweyCode.parse("1.2"), (1.0, 1.0), 0b1,
                      DistTable.unit())

    def test_zero_full_mask_rejected(self):
        with pytest.raises(ReproError):
            StackEngine(0, lambda code, prob: None)


class TestCandidateRuns:
    def test_finish_candidate_returns_unpromoted_table(self, fragment_doc):
        """Evaluating C1 as an EagerTopK candidate yields the paper's
        MUX2 table (Example 5) with the full mask harvested."""
        results, sink = collect_sink()
        c1 = DeweyCode.parse("1.M1.I1.1")
        engine = StackEngine(0b11, sink, context_length=len(c1) - 1)
        for item in fragment_items(fragment_doc):
            engine.feed(item)
        table = engine.finish_candidate()
        assert results == [("1.M1.I1.1", pytest.approx(0.00945))]
        assert table.probability(0b11) == 0.0  # harvested
        assert table.lost == pytest.approx(0.063)
        assert table.probability(0b01) == pytest.approx(0.507)
        assert table.probability(0b10) == pytest.approx(0.327)
        assert table.probability(0b00) == pytest.approx(0.103)

    def test_finish_candidate_empty_returns_unit(self):
        _, sink = collect_sink()
        engine = StackEngine(0b11, sink, context_length=1)
        table = engine.finish_candidate()
        assert table.probability(0) == 1.0

    def test_preset_table_used_verbatim(self):
        """Feeding a preset region table reproduces the same parent
        table as feeding the region's raw matches."""
        results, sink = collect_sink()
        preset = DistTable({0b11: 0.5, 0b01: 0.5})
        engine = StackEngine(0b11, sink, context_length=0)
        engine.feed(StackItem(DeweyCode.parse("1.2"), (1.0, 0.4),
                              table=preset))
        table = engine.finish_candidate()
        # Root (ordinary) harvests 0.4 * 0.5 of full mass.
        assert results == [("1", pytest.approx(0.2))]
        assert table.probability(0b01) == pytest.approx(0.2)
        assert table.probability(0b00) == pytest.approx(0.6)
