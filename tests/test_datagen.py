"""Unit tests for the workload generators."""

import pytest

from repro import NodeType, document_stats, validate_document
from repro.datagen import (DATASET_SPECS, QUERIES, dataset_names,
                           generate_dblp, generate_mondial, generate_xmark,
                           make_probabilistic, queries_for_dataset,
                           query_keywords)
from repro.exceptions import ModelError, QueryError
from repro.index.tokenizer import node_terms


class TestDeterminism:
    def test_xmark_reproducible(self):
        first = generate_xmark(scale=1, seed=7)
        second = generate_xmark(scale=1, seed=7)
        assert len(first) == len(second)
        assert [n.label for n in first][:500] == \
            [n.label for n in second][:500]
        assert [n.text for n in first][:500] == \
            [n.text for n in second][:500]

    def test_different_seeds_differ(self):
        first = generate_dblp(publications=50, seed=1)
        second = generate_dblp(publications=50, seed=2)
        assert [n.text for n in first] != [n.text for n in second]

    def test_probabilistic_injection_reproducible(self):
        base = generate_dblp(publications=100, seed=3)
        first = make_probabilistic(base, seed=11)
        second = make_probabilistic(base, seed=11)
        assert [n.edge_prob for n in first] == \
            [n.edge_prob for n in second]
        assert [n.node_type for n in first] == \
            [n.node_type for n in second]


class TestShapes:
    def test_xmark_scales_linearly(self):
        small = generate_xmark(scale=1)
        large = generate_xmark(scale=2)
        assert len(large) / len(small) == pytest.approx(2.0, rel=0.15)

    def test_mondial_is_deep(self):
        doc = generate_mondial()
        assert doc.height >= 6

    def test_dblp_is_shallow_and_wide(self):
        doc = generate_dblp(publications=500)
        assert doc.height <= 3
        assert len(doc.root.children) == 500


class TestProbabilisticInjection:
    def test_ratio_hit(self):
        base = generate_xmark(scale=1)
        prob = make_probabilistic(base, distributional_ratio=0.15, seed=1)
        stats = document_stats(prob)
        assert stats.distributional_ratio == pytest.approx(0.15, abs=0.03)
        validate_document(prob)

    def test_paper_range_10_to_20_percent(self):
        for name in dataset_names():
            ratio = DATASET_SPECS[name].distributional_ratio
            assert 0.10 <= ratio <= 0.20

    def test_mux_probabilities_sum_below_one(self):
        base = generate_dblp(publications=300, seed=5)
        prob = make_probabilistic(base, seed=5)
        for node in prob:
            if node.node_type is NodeType.MUX:
                assert sum(c.edge_prob for c in node.children) <= 1.0 + 1e-9

    def test_source_document_untouched(self):
        base = generate_dblp(publications=50, seed=5)
        before = len(base)
        make_probabilistic(base, seed=5)
        assert len(base) == before
        assert all(n.node_type is NodeType.ORDINARY for n in base)

    def test_zero_ratio_copies_verbatim(self):
        base = generate_dblp(publications=20, seed=5)
        prob = make_probabilistic(base, distributional_ratio=0.0)
        assert len(prob) == len(base)

    def test_invalid_ratio(self):
        base = generate_dblp(publications=10, seed=5)
        with pytest.raises(ModelError):
            make_probabilistic(base, distributional_ratio=0.6)

    def test_keyword_content_preserved(self):
        base = generate_mondial()
        prob = make_probabilistic(base, seed=2)
        def term_count(doc, term):
            return sum(1 for node in doc if term in node_terms(node))
        for term in ("muslim", "organization", "pacific"):
            assert term_count(prob, term) == term_count(base, term)


class TestQueries:
    def test_table3_complete(self):
        assert len(QUERIES) == 15
        assert query_keywords("X1") == ["United States", "Graduate"]
        assert query_keywords("d5") == ["stream", "Query"]

    def test_query_sets(self):
        assert queries_for_dataset("xmark") == \
            ["X1", "X2", "X3", "X4", "X5"]
        assert queries_for_dataset("DBLP") == \
            ["D1", "D2", "D3", "D4", "D5"]

    def test_unknown_ids(self):
        with pytest.raises(QueryError):
            query_keywords("Z9")
        with pytest.raises(QueryError):
            queries_for_dataset("wikipedia")

    def test_every_query_has_matches_in_its_dataset(self):
        """Each Table III term occurs in the corresponding corpus."""
        from repro.index.tokenizer import normalize_query
        corpora = {
            "xmark": generate_xmark(scale=1),
            "mondial": generate_mondial(),
            "dblp": generate_dblp(publications=3000),
        }
        for family, document in corpora.items():
            vocabulary = set()
            for node in document:
                vocabulary.update(node_terms(node))
            for query_id in queries_for_dataset(family):
                for term in normalize_query(query_keywords(query_id)):
                    assert term in vocabulary, (query_id, term)


class TestDatasetRegistry:
    def test_names(self):
        assert dataset_names() == ["doc1", "doc2", "doc3", "doc4",
                                   "doc5", "doc6"]

    def test_unknown_dataset(self):
        from repro.datagen import make_document
        with pytest.raises(QueryError):
            make_document("doc99")

    def test_families_cover_queries(self):
        families = {spec.family for spec in DATASET_SPECS.values()}
        assert families == {"xmark", "mondial", "dblp"}
