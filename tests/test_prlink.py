"""Unit tests for probability links."""

import pytest

from repro.encoding.prlink import (path_probability, prefix_probabilities,
                                   validate_link)
from repro.exceptions import EncodingError


class TestPathProbability:
    def test_full_link(self):
        # D1's link from the paper: 1, 0.25, 0.6, 1, 0.5.
        link = (1.0, 0.25, 0.6, 1.0, 0.5)
        assert path_probability(link) == pytest.approx(0.075)

    def test_prefix_lengths(self):
        link = (1.0, 0.25, 0.6)
        assert path_probability(link, 0) == 1.0
        assert path_probability(link, 1) == 1.0
        assert path_probability(link, 2) == pytest.approx(0.25)
        assert path_probability(link, 3) == pytest.approx(0.15)

    def test_length_out_of_range(self):
        with pytest.raises(EncodingError):
            path_probability((1.0,), 2)

    def test_prefix_probabilities(self):
        link = (1.0, 0.25, 0.6, 1.0, 0.5)
        assert prefix_probabilities(link) == pytest.approx(
            (1.0, 0.25, 0.15, 0.15, 0.075))


class TestValidateLink:
    def test_valid(self):
        validate_link((1.0, 0.5, 1.0))

    def test_empty(self):
        with pytest.raises(EncodingError):
            validate_link(())

    def test_root_must_be_one(self):
        with pytest.raises(EncodingError, match="root"):
            validate_link((0.5, 0.5))

    def test_out_of_range_entry(self):
        with pytest.raises(EncodingError, match="outside"):
            validate_link((1.0, 1.5))
        with pytest.raises(EncodingError, match="outside"):
            validate_link((1.0, 0.0))
