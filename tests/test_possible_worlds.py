"""Unit tests for exact possible-world enumeration (Section II)."""

import random

import pytest

from repro import (DocumentBuilder, NodeType, PDocument, PNode,
                   enumerate_possible_worlds, sample_possible_world)
from repro.exceptions import ModelError
from repro.prxml.possible_worlds import (count_possible_worlds,
                                         world_probability_total)


class TestEnumeration:
    def test_deterministic_document_single_world(self):
        builder = DocumentBuilder("a")
        builder.leaf("b")
        builder.leaf("c")
        worlds = enumerate_possible_worlds(builder.build())
        assert len(worlds) == 1
        assert worlds[0].probability == pytest.approx(1.0)
        assert len(worlds[0].node_ids) == 3

    def test_ind_child_subsets(self):
        builder = DocumentBuilder("a")
        with builder.ind():
            builder.leaf("x", prob=0.6)
            builder.leaf("y", prob=0.5)
        worlds = enumerate_possible_worlds(builder.build())
        assert len(worlds) == 4
        probabilities = sorted(w.probability for w in worlds)
        assert probabilities == pytest.approx(
            sorted([0.3, 0.3, 0.2, 0.2]))

    def test_mux_at_most_one_child(self):
        builder = DocumentBuilder("a")
        with builder.mux():
            builder.leaf("x", prob=0.5)
            builder.leaf("y", prob=0.3)
        worlds = enumerate_possible_worlds(builder.build())
        assert len(worlds) == 3
        by_size = {len(w.node_ids): w.probability for w in worlds}
        assert by_size[1] == pytest.approx(0.2)  # neither chosen
        for world in worlds:
            labels = [n.label for n in world.root.iter_subtree()]
            assert not ("x" in labels and "y" in labels)

    def test_paper_example_2_seven_worlds(self, fragment_doc):
        """Figure 2: the C1 subtree yields 7 worlds with probabilities
        0.5, 0.063, 0.3, 0.007, 0.027, 0.103 (and the parent branch's
        absence mass 1 - 0.15 here, since our fragment hangs C1 at
        Pr(path) = 0.15)."""
        worlds = enumerate_possible_worlds(fragment_doc)
        with_c1 = [w for w in worlds
                   if any(n.label == "C1" for n in w.root.iter_subtree())]
        probabilities = sorted(
            round(w.probability / 0.15, 6) for w in with_c1)
        assert probabilities == pytest.approx(
            sorted([0.5, 0.063, 0.3, 0.007, 0.027, 0.103]))

    def test_probabilities_sum_to_one(self, figure1_doc):
        worlds = enumerate_possible_worlds(figure1_doc)
        assert world_probability_total(worlds) == pytest.approx(1.0)

    def test_identical_worlds_merged(self):
        # Two MUX children with the same label still yield distinct
        # worlds (different source nodes), but absence branches merge.
        builder = DocumentBuilder("a")
        with builder.mux():
            builder.leaf("x", prob=0.4)
        with builder.mux():
            builder.leaf("y", prob=0.5)
        worlds = enumerate_possible_worlds(builder.build())
        assert len(worlds) == 4
        assert count_possible_worlds(builder.build()) == 4

    def test_distributional_chains_splice_to_ordinary_ancestor(self):
        builder = DocumentBuilder("a")
        with builder.mux():
            with builder.ind(prob=0.5):
                builder.leaf("x", prob=1.0)
        worlds = enumerate_possible_worlds(builder.build())
        has_x = [w for w in worlds if len(w.node_ids) == 2]
        assert len(has_x) == 1
        world = has_x[0]
        assert world.root.children[0].label == "x"
        assert world.probability == pytest.approx(0.5)

    def test_max_worlds_guard(self):
        builder = DocumentBuilder("a")
        with builder.ind():
            for index in range(30):
                builder.leaf(f"x{index}", prob=0.5)
        with pytest.raises(ModelError, match="max_worlds"):
            enumerate_possible_worlds(builder.build(), max_worlds=1000)

    def test_contains_maps_back_to_source_nodes(self, fragment_doc):
        worlds = enumerate_possible_worlds(fragment_doc)
        c1 = fragment_doc.find_by_label("C1")[0]
        total = sum(w.probability for w in worlds if w.contains(c1))
        assert total == pytest.approx(0.15)


class TestSampling:
    def test_sampling_frequency_approximates_probability(self,
                                                         fragment_doc):
        rng = random.Random(42)
        c1 = fragment_doc.find_by_label("C1")[0]
        hits = sum(
            sample_possible_world(fragment_doc, rng).contains(c1)
            for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.15, abs=0.02)

    def test_sampled_world_respects_mux(self):
        builder = DocumentBuilder("a")
        with builder.mux():
            builder.leaf("x", prob=0.5)
            builder.leaf("y", prob=0.5)
        doc = builder.build()
        rng = random.Random(1)
        for _ in range(200):
            world = sample_possible_world(doc, rng)
            labels = [n.label for n in world.root.iter_subtree()]
            assert not ("x" in labels and "y" in labels)
