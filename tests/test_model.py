"""Unit tests for the PrXML tree model."""

import pytest

from repro import NodeType, PDocument, PNode
from repro.exceptions import ModelError
from repro.prxml.model import iter_edges


def small_doc():
    root = PNode("a")
    b = root.add_child(PNode("b", text="hello"))
    ind = root.add_child(PNode("IND", NodeType.IND, edge_prob=1.0))
    c = ind.add_child(PNode("c", edge_prob=0.5))
    mux = c.add_child(PNode("MUX", NodeType.MUX))
    mux.add_child(PNode("d", edge_prob=0.3))
    mux.add_child(PNode("e", edge_prob=0.6))
    return PDocument(root), root, b, ind, c, mux


class TestPNode:
    def test_ordinary_node_defaults(self):
        node = PNode("item")
        assert node.is_ordinary
        assert not node.is_distributional
        assert node.edge_prob == 1.0
        assert node.text is None
        assert node.is_leaf

    def test_distributional_node_rejects_text(self):
        with pytest.raises(ModelError):
            PNode("IND", NodeType.IND, text="boom")

    def test_add_child_sets_parent(self):
        parent = PNode("p")
        child = parent.add_child(PNode("c"), edge_prob=0.4)
        assert child.parent is parent
        assert child.edge_prob == 0.4
        assert parent.children == [child]

    def test_add_child_twice_rejected(self):
        parent, other = PNode("p"), PNode("q")
        child = parent.add_child(PNode("c"))
        with pytest.raises(ModelError):
            other.add_child(child)

    def test_depth_and_ancestors(self):
        _, root, b, ind, c, mux = small_doc()
        assert root.depth == 0
        assert b.depth == 1
        assert mux.depth == 3
        assert list(mux.ancestors()) == [c, ind, root]

    def test_path_probability_multiplies_edges(self):
        _, _, _, _, c, mux = small_doc()
        assert c.path_probability() == pytest.approx(0.5)
        assert mux.children[0].path_probability() == pytest.approx(0.15)

    def test_iter_subtree_is_preorder(self):
        doc, root, b, ind, c, mux = small_doc()
        labels = [node.label for node in root.iter_subtree()]
        assert labels == ["a", "b", "IND", "c", "MUX", "d", "e"]


class TestPDocument:
    def test_root_constraints(self):
        with pytest.raises(ModelError):
            PDocument(PNode("IND", NodeType.IND))
        with pytest.raises(ModelError):
            PDocument(PNode("a", edge_prob=0.5))
        parent = PNode("p")
        child = parent.add_child(PNode("c"))
        with pytest.raises(ModelError):
            PDocument(child)

    def test_node_ids_are_preorder_positions(self):
        doc, *_ = small_doc()
        for position, node in enumerate(doc):
            assert node.node_id == position
            assert doc.node_by_id(position) is node

    def test_node_by_id_out_of_range(self):
        doc, *_ = small_doc()
        with pytest.raises(ModelError):
            doc.node_by_id(len(doc))

    def test_refresh_after_mutation(self):
        doc, root, *_ = small_doc()
        before = len(doc)
        root.add_child(PNode("extra"))
        doc.refresh()
        assert len(doc) == before + 1
        assert doc.node_by_id(len(doc) - 1).label in {"extra", "e"}

    def test_postorder_visits_children_first(self):
        doc, *_ = small_doc()
        seen = set()
        for node in doc.iter_postorder():
            for child in node.children:
                assert child.node_id in seen
            seen.add(node.node_id)
        assert len(seen) == len(doc)

    def test_height_and_fanout(self):
        doc, *_ = small_doc()
        assert doc.height == 4

    def test_find_helpers(self):
        doc, *_ = small_doc()
        assert doc.find_first(lambda n: n.label == "c").label == "c"
        assert doc.find_first(lambda n: n.label == "zz") is None
        assert len(doc.find_by_label("d")) == 1
        assert len(doc.find_all(lambda n: n.is_distributional)) == 2

    def test_iter_ordinary_skips_distributional(self):
        doc, *_ = small_doc()
        labels = {node.label for node in doc.iter_ordinary()}
        assert labels == {"a", "b", "c", "d", "e"}

    def test_theoretical_world_count(self):
        doc, *_ = small_doc()
        # IND with 1 child doubles; MUX with 2 children triples.
        assert doc.theoretical_world_count() == 2 * 3

    def test_copy_is_deep_and_equal_shape(self):
        doc, root, *_ = small_doc()
        twin = doc.copy()
        assert len(twin) == len(doc)
        assert [n.label for n in twin] == [n.label for n in doc]
        assert [n.edge_prob for n in twin] == [n.edge_prob for n in doc]
        twin.root.children[0].label = "changed"
        assert doc.root.children[0].label == "b"

    def test_iter_edges_covers_every_child(self):
        doc, *_ = small_doc()
        edges = list(iter_edges(doc))
        assert len(edges) == len(doc) - 1
        for parent, child in edges:
            assert child.parent is parent


class TestDeepDocuments:
    def test_very_deep_document_does_not_recurse(self):
        root = PNode("n0")
        node = root
        for depth in range(1, 5000):
            node = node.add_child(PNode(f"n{depth}"))
        doc = PDocument(root)
        assert len(doc) == 5000
        assert doc.height == 4999
        assert doc.copy().height == 4999
        assert sum(1 for _ in doc.iter_postorder()) == 5000
