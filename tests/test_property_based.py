"""Property-based tests (hypothesis) for the core invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (Database, DeweyCode, NodeType, PDocument, PNode,
                   encode_document, enumerate_possible_worlds, parse_pxml,
                   serialize_pxml, topk_search)
from repro.core.distribution import DistTable
from repro.core.heap import TopKHeap
from repro.prxml.possible_worlds import world_probability_total
from repro.slca.base import remove_ancestors

# -- strategies --------------------------------------------------------------

_PROBS = st.sampled_from([round(x / 20, 2) for x in range(1, 21)])
_TEXTS = st.sampled_from([None, "k1", "k2", "k1 k2", "zz"])


@st.composite
def pdocuments(draw, max_nodes=14):
    """Random small PrXML{ind,mux} documents."""
    root = PNode("r", NodeType.ORDINARY, draw(_TEXTS))
    nodes = [root]
    budget = draw(st.integers(min_value=0, max_value=max_nodes - 1))
    for _ in range(budget):
        parent = nodes[draw(st.integers(0, len(nodes) - 1))]
        kind = draw(st.sampled_from(
            [NodeType.ORDINARY, NodeType.ORDINARY, NodeType.IND,
             NodeType.MUX]))
        if parent.node_type is NodeType.MUX:
            used = sum(child.edge_prob for child in parent.children)
            remaining = round(1.0 - used, 2)
            if remaining < 0.05:
                continue
            prob = min(draw(_PROBS), remaining)
        else:
            prob = draw(_PROBS)
        text = draw(_TEXTS) if kind is NodeType.ORDINARY else None
        label = "n" if kind is NodeType.ORDINARY else kind.name
        child = PNode(label, kind, text, prob)
        parent.add_child(child)
        nodes.append(child)

    def prune(node):
        node.children = [child for child in node.children if prune(child)]
        return not node.is_distributional or bool(node.children)

    prune(root)
    return PDocument(root)


@st.composite
def dist_tables(draw, bits=2):
    """Random keyword distributions with retained + lost mass = 1."""
    size = 1 << bits
    weights = draw(st.lists(st.integers(0, 10), min_size=size + 1,
                            max_size=size + 1).filter(lambda w: sum(w) > 0))
    total = sum(weights)
    masks = {mask: weight / total
             for mask, weight in enumerate(weights[:-1]) if weight}
    return DistTable(masks, lost=weights[-1] / total)


# -- possible-world semantics --------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(pdocuments())
def test_world_probabilities_sum_to_one(document):
    worlds = enumerate_possible_worlds(document)
    assert math.isclose(world_probability_total(worlds), 1.0,
                        rel_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(pdocuments(), st.sampled_from([["k1"], ["k1", "k2"]]),
       st.integers(1, 6))
def test_algorithms_agree_with_oracle(document, keywords, k):
    database = Database.from_document(document)
    oracle = topk_search(database, keywords, k, "possible_worlds")
    stack = topk_search(database, keywords, k, "prstack")
    eager = topk_search(database, keywords, k, "eager")
    oracle_probs = [r.probability for r in oracle]
    for outcome in (stack, eager):
        probs = [r.probability for r in outcome]
        assert len(probs) == len(oracle_probs)
        assert all(math.isclose(ours, theirs, abs_tol=1e-9)
                   for ours, theirs in zip(probs, oracle_probs))
    # Codes must agree wherever probabilities are strictly above the
    # boundary (ties at the k-th value may legitimately reorder).
    if oracle_probs:
        boundary = oracle_probs[-1]

        def above(outcome):
            return {str(r.code) for r in outcome
                    if r.probability > boundary and not math.isclose(
                        r.probability, boundary, abs_tol=1e-9)}

        for outcome in (stack, eager):
            assert above(outcome) == above(oracle)


# -- distribution tables ----------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(dist_tables(), _PROBS)
def test_ind_promotion_conserves_mass(table, edge_prob):
    promoted = table.promoted_ind(edge_prob)
    assert math.isclose(promoted.total(), 1.0, rel_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(dist_tables(), _PROBS)
def test_mux_promotion_scales_mass(table, edge_prob):
    promoted = table.promoted_mux(edge_prob)
    assert math.isclose(promoted.total(), edge_prob, rel_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(dist_tables(), dist_tables())
def test_ind_merge_conserves_mass(left, right):
    merged = left.copy()
    merged.merge_ind(right)
    assert math.isclose(merged.total(), 1.0, rel_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(dist_tables())
def test_harvest_conserves_mass(table):
    before = table.total()
    harvested = table.harvest(0b11)
    assert harvested >= 0.0
    assert math.isclose(table.total(), before, rel_tol=1e-9)
    assert table.probability(0b11) == 0.0


# -- encoding ------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(pdocuments())
def test_dewey_order_is_document_order(document):
    encoded = encode_document(document)
    positions = [code.positions for code in encoded.iter_codes()]
    assert positions == sorted(positions)


@settings(max_examples=60, deadline=None)
@given(pdocuments())
def test_serialization_round_trip(document):
    again = parse_pxml(serialize_pxml(document))
    assert [n.label for n in again] == [n.label for n in document]
    assert [n.node_type for n in again] == \
        [n.node_type for n in document]
    for ours, theirs in zip(document, again):
        assert math.isclose(ours.edge_prob, theirs.edge_prob,
                            rel_tol=1e-9)


# -- extension semantics ---------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(pdocuments(), st.sampled_from([["k1"], ["k1", "k2"]]))
def test_elca_dominates_slca_pointwise(document, keywords):
    """Consuming occurrences can only help ancestors: every node's ELCA
    probability is at least its SLCA probability, and the deepest
    answers coincide."""
    database = Database.from_document(document)
    slca = topk_search(database, keywords, 1000, "prstack")
    elca = topk_search(database, keywords, 1000, "prstack",
                       semantics="elca")
    slca_by_code = {str(r.code): r.probability for r in slca}
    elca_by_code = {str(r.code): r.probability for r in elca}
    for code, probability in slca_by_code.items():
        assert elca_by_code.get(code, 0.0) >= probability - 1e-9


@settings(max_examples=40, deadline=None)
@given(pdocuments(), st.sampled_from([["k1"], ["k1", "k2"]]))
def test_elca_matches_world_enumeration(document, keywords):
    database = Database.from_document(document)
    oracle = topk_search(database, keywords, 1000, "possible_worlds",
                         semantics="elca")
    stack = topk_search(database, keywords, 1000, "prstack",
                        semantics="elca")
    # Tolerance-based comparison: round-to-N equality is brittle when
    # two 1-ulp-apart floats straddle a rounding boundary.
    assert [r.probability for r in stack] == \
        pytest.approx([r.probability for r in oracle], abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([["k1"], ["k1", "k2"]]),
       st.integers(1, 5))
def test_exp_documents_agree_with_oracle(seed, keywords, k):
    import random as random_module
    from tests.conftest import random_pdoc
    document = random_pdoc(random_module.Random(seed), max_nodes=12,
                           with_exp=True)
    database = Database.from_document(document)
    oracle = topk_search(database, keywords, k, "possible_worlds")
    stack = topk_search(database, keywords, k, "prstack")
    eager = topk_search(database, keywords, k, "eager")
    reference = pytest.approx([r.probability for r in oracle],
                              abs=1e-9)
    assert [r.probability for r in stack] == reference
    assert [r.probability for r in eager] == reference


@settings(max_examples=60, deadline=None)
@given(pdocuments(), st.floats(0.01, 1.0))
def test_threshold_consistent_with_topk(document, cutoff):
    from repro import threshold_search
    database = Database.from_document(document)
    everything = topk_search(database, ["k1", "k2"], 1000, "prstack")
    selected = threshold_search(database.index, ["k1", "k2"], cutoff)
    expected = [round(r.probability, 10) for r in everything
                if r.probability >= cutoff]
    assert [round(r.probability, 10) for r in selected] == expected


# -- helpers -------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(st.lists(st.integers(1, 3), min_size=1, max_size=5),
                min_size=0, max_size=12))
def test_remove_ancestors_yields_antichain(position_lists):
    codes = [DeweyCode(tuple(positions),
                       (NodeType.ORDINARY,) * len(positions))
             for positions in position_lists]
    kept = remove_ancestors(codes)
    for left in kept:
        for right in kept:
            if left != right:
                assert not left.is_ancestor_of(right)
    # Idempotent, and every input code has a kept descendant-or-self.
    assert remove_ancestors(kept) == kept
    for code in codes:
        assert any(code.is_ancestor_or_self_of(survivor)
                   for survivor in kept)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 30),
                          st.floats(0.01, 1.0)),
                min_size=0, max_size=30),
       st.integers(1, 5))
def test_heap_matches_reference_sort(offers, k):
    heap = TopKHeap(k)
    best = {}
    for position, probability in offers:
        code = DeweyCode((1, position), (NodeType.ORDINARY,) * 2)
        heap.offer(code, probability)
        if probability > best.get(code, 0.0):
            best[code] = probability
    expected = sorted(best.items(),
                      key=lambda item: (-item[1], item[0].positions))[:k]
    got = [(result.code, result.probability) for result in heap.results()]
    assert got == expected
