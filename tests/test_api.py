"""Unit tests for the public topk_search facade."""

import pytest

from repro import Algorithm, Database, topk_search
from repro.exceptions import QueryError


class TestSources:
    def test_accepts_document(self, figure1_doc):
        outcome = topk_search(figure1_doc, ["k1", "k2"], k=3)
        assert len(outcome) >= 1

    def test_accepts_database(self, figure1_db):
        outcome = topk_search(figure1_db, ["k1", "k2"], k=3)
        assert len(outcome) >= 1

    def test_accepts_index(self, figure1_db):
        outcome = topk_search(figure1_db.index, ["k1", "k2"], k=3)
        assert len(outcome) >= 1

    def test_rejects_other_types(self):
        with pytest.raises(QueryError, match="unsupported"):
            topk_search("not a document", ["k1"], k=3)


class TestAlgorithmSelection:
    def test_enum_and_string_equivalent(self, figure1_db):
        by_enum = topk_search(figure1_db, ["k1"], 3, Algorithm.PRSTACK)
        by_name = topk_search(figure1_db, ["k1"], 3, "prstack")
        assert [str(r.code) for r in by_enum] == \
            [str(r.code) for r in by_name]

    def test_default_is_eager(self, figure1_db):
        outcome = topk_search(figure1_db, ["k1", "k2"], k=3)
        assert outcome.stats["algorithm"] == "eager_topk"

    def test_all_algorithms_agree(self, figure1_db):
        reference = None
        for algorithm in Algorithm:
            outcome = topk_search(figure1_db, ["k1", "k2"], 3, algorithm)
            key = [(str(r.code), round(r.probability, 10))
                   for r in outcome]
            if reference is None:
                reference = key
            assert key == reference, algorithm

    def test_unknown_algorithm(self, figure1_db):
        with pytest.raises(QueryError, match="unknown algorithm"):
            topk_search(figure1_db, ["k1"], 3, "quantum")


class TestResults:
    def test_results_hydrated_with_nodes(self, figure1_db):
        outcome = topk_search(figure1_db, ["k1", "k2"], k=5,
                              algorithm="prstack")
        for result in outcome:
            assert result.node is not None
            assert result.node.is_ordinary
            assert result.label == result.node.label

    def test_invalid_k(self, figure1_db):
        with pytest.raises(QueryError):
            topk_search(figure1_db, ["k1"], k=0)

    def test_empty_query_rejected(self, figure1_db):
        with pytest.raises(QueryError):
            topk_search(figure1_db, [], k=3)

    def test_str_of_result(self, fragment_db):
        outcome = topk_search(fragment_db, ["k1", "k2"], k=1)
        text = str(outcome.results[0])
        assert "C1" in text and "0.00945" in text

    def test_outcome_iterable_and_sized(self, figure1_db):
        outcome = topk_search(figure1_db, ["k1"], k=4)
        assert len(list(outcome)) == len(outcome)
        assert len(outcome.codes()) == len(outcome.probabilities())


class TestQueryValidation:
    def test_k_must_be_positive_with_value_in_message(self, figure1_db):
        with pytest.raises(QueryError, match="k must be positive, got -2"):
            topk_search(figure1_db, ["k1"], k=-2)

    def test_duplicate_keyword_rejected(self, figure1_db):
        with pytest.raises(QueryError, match="duplicate query keyword"):
            topk_search(figure1_db, ["k1", "k1"], k=3)

    def test_case_variant_duplicate_rejected(self, figure1_db):
        # "K1" and "k1" normalise to the same term: the query would
        # silently collapse to fewer required keywords.
        with pytest.raises(QueryError, match="'K1'.*'k1'"):
            topk_search(figure1_db, ["k1", "K1"], k=3)

    def test_multi_word_keywords_may_share_terms(self, figure1_db):
        # Distinct keyword strings that merely overlap term-wise are
        # fine; only identical normalised keyword tuples are rejected.
        outcome = topk_search(figure1_db, ["k1 k2", "k2"], k=3)
        assert len(outcome) >= 1

    def test_unindexable_keyword_named_in_error(self, figure1_db):
        with pytest.raises(QueryError, match="'!!'"):
            topk_search(figure1_db, ["k1", "!!"], k=3)

    def test_validate_query_returns_list(self):
        from repro.core.api import validate_query
        assert validate_query(iter(["a", "b"]), 5) == ["a", "b"]
