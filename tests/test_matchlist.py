"""Unit tests for match entries and the consuming match list."""

import pytest

from repro import DeweyCode, build_index, encode_document
from repro.index.matchlist import (MatchList, build_match_entries,
                                   keyword_code_lists)


@pytest.fixture
def fragment_index(fragment_doc):
    return build_index(encode_document(fragment_doc))


class TestBuildMatchEntries:
    def test_masks_merge_per_node(self, fragment_index):
        terms, entries = build_match_entries(fragment_index, ["k1", "k2"])
        assert terms == ["k1", "k2"]
        by_code = {str(e.code): e.mask for e in entries}
        assert by_code["1.M1.I1.1.M1.1"] == 0b01        # D1: k1 only
        assert by_code["1.M1.I1.1.M1.I2.2"] == 0b10     # E1: k2 only

    def test_document_order(self, fragment_index):
        _, entries = build_match_entries(fragment_index, ["k1", "k2"])
        positions = [e.code.positions for e in entries]
        assert positions == sorted(positions)

    def test_node_matching_both_terms(self, figure1_db):
        # C1's fragment has no dual-match node; craft the query so one
        # node matches twice: label and text.
        _, entries = build_match_entries(figure1_db.index, ["B3", "k1"])
        dual = [e for e in entries if bin(e.mask).count("1") == 2]
        assert dual, "B3 matches both its tag and its text term"

    def test_keyword_code_lists(self, fragment_index):
        terms, lists = keyword_code_lists(fragment_index, ["k1", "k2"])
        assert [len(lst) for lst in lists] == [2, 2]
        for lst in lists:
            assert [c.positions for c in lst] == \
                sorted(c.positions for c in lst)


class TestMatchList:
    def build(self, fragment_index):
        _, entries = build_match_entries(fragment_index, ["k1", "k2"])
        return MatchList(entries)

    def test_subtree_slice(self, fragment_index):
        matches = self.build(fragment_index)
        c1 = DeweyCode.parse("1.M1.I1.1")
        inside = list(matches.iter_subtree(c1))
        assert len(inside) == 4  # D1, D2, E1, E2

    def test_consume_marks_and_removes(self, fragment_index):
        matches = self.build(fragment_index)
        c1 = DeweyCode.parse("1.M1.I1.1")
        taken = matches.consume_subtree(c1)
        assert len(taken) == 4
        assert matches.remaining == len(matches) - 4
        assert list(matches.iter_subtree(c1)) == []
        assert matches.consume_subtree(c1) == []

    def test_consumption_outside_subtree_untouched(self, fragment_index):
        matches = self.build(fragment_index)
        ind3 = DeweyCode.parse("1.M1.I1.1.M1.I2")
        taken = matches.consume_subtree(ind3)
        assert len(taken) == 2  # D2, E1
        root = DeweyCode.parse("1")
        rest = list(matches.iter_subtree(root))
        assert len(rest) == 2  # D1, E2 remain

    def test_unconsumed_mask_union(self, fragment_index):
        matches = self.build(fragment_index)
        root = DeweyCode.parse("1")
        assert matches.unconsumed_mask_union(root) == 0b11
        matches.consume_subtree(root)
        assert matches.unconsumed_mask_union(root) == 0
