"""Randomised oracle cross-check: both paper algorithms against exact
possible-world enumeration, with tie-tolerant comparison.

This is the library's strongest correctness gate — the test that caught
the unsoundness of the paper's printed Properties 1-3 during
development (see repro/core/bounds.py).
"""

import random

import pytest

from repro import Database, topk_search
from tests.conftest import random_pdoc

EPS = 1e-7


def compatible(reference, observed):
    """Same probability multiset; same codes strictly above boundary."""
    ref_probs = [result.probability for result in reference]
    got_probs = [result.probability for result in observed]
    if len(ref_probs) != len(got_probs):
        return False
    if any(abs(a - b) > EPS for a, b in zip(ref_probs, got_probs)):
        return False
    if not ref_probs:
        return True
    boundary = ref_probs[-1]
    ref_codes = {str(result.code) for result in reference
                 if result.probability > boundary + EPS}
    got_codes = {str(result.code) for result in observed
                 if result.probability > boundary + EPS}
    return ref_codes == got_codes


@pytest.mark.parametrize("seed", range(50))
def test_algorithms_match_oracle(seed):
    rng = random.Random(seed * 977 + 13)
    document = random_pdoc(rng, max_nodes=18)
    if document.theoretical_world_count() > 100_000:
        pytest.skip("world space too large for the oracle")
    database = Database.from_document(document)
    for keywords in (["k1", "k2"], ["k1"], ["k1", "k2", "zz"]):
        for k in (1, 2, 3, 10):
            oracle = topk_search(database, keywords, k,
                                 "possible_worlds").results
            stack = topk_search(database, keywords, k, "prstack").results
            eager = topk_search(database, keywords, k, "eager").results
            assert compatible(oracle, stack), (seed, keywords, k)
            assert compatible(oracle, eager), (seed, keywords, k)
            # The two paper algorithms must agree *exactly* (shared
            # deterministic tie handling), not just compatibly.
            assert [(str(r.code), round(r.probability, 10))
                    for r in stack] == \
                [(str(r.code), round(r.probability, 10))
                 for r in eager], (seed, keywords, k)
