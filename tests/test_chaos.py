"""The seeded chaos harness end-to-end: ``run_chaos`` + ``repro chaos``.

One real chaos run over a small 2-replica corpus — four phases, each
against a live in-thread HTTP server — must come back clean: every
query answered, zero violations, hedges fired where required.  The
suite also pins the harness's own guard rails (a 1-replica corpus is
rejected: replica failover is the property under test) and the CLI
exit-code/report contract CI relies on.
"""

import json

import pytest

from repro.cli import main
from repro.corpus import build_corpus
from repro.exceptions import QueryError
from repro.resilience.chaos import CHAOS_FORMAT, run_chaos
from tests.test_corpus import random_corpus


@pytest.fixture(scope="module")
def chaos_corpus(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("chaos") / "corpus2")
    build_corpus(random_corpus(29, count=4, max_nodes=18), directory,
                 shards=2, replicas=2)
    return directory


class TestRunChaos:
    def test_full_suite_is_clean_and_hedges_fire(self, chaos_corpus):
        report = run_chaos(chaos_corpus, seed=7, queries=4,
                           deadline_ms=3000.0, epsilon_ms=1500.0,
                           slow_ms=150.0, hedge_ms=25.0)
        assert report["ok"], report["violations"]
        assert report["format"] == CHAOS_FORMAT
        assert report["violations"] == []
        assert report["replicas"] == 2
        names = [phase["phase"] for phase in report["phases"]]
        assert names == ["baseline", "replica-down",
                         "slow-replica-hedge", "torn-skew"]
        for phase in report["phases"]:
            assert phase["answered"] == 4
            assert phase["mismatches"] == 0
            assert phase["overshoots"] == 0
        down = report["phases"][1]
        assert down["partial"] == 0  # failover absorbed the kill
        assert down["faults_fired"].get("replica_down", 0) >= 1
        hedge = report["phases"][2]
        assert hedge["hedges"]["fired"] >= 1
        assert hedge["hedges"]["won"] + hedge["hedges"]["lost"] \
            <= hedge["hedges"]["fired"]

    def test_single_replica_corpus_is_rejected(self, tmp_path):
        directory = str(tmp_path / "corpus1")
        build_corpus(random_corpus(31), directory, shards=2)
        with pytest.raises(QueryError, match="replicas 2"):
            run_chaos(directory)


class TestChaosCli:
    def test_exit_zero_and_report_file(self, chaos_corpus, tmp_path,
                                       capsys):
        out = tmp_path / "chaos.json"
        code = main(["chaos", chaos_corpus, "--seed", "7",
                     "--queries", "2", "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "chaos seed 7: OK" in captured
        report = json.loads(out.read_text())
        assert report["format"] == CHAOS_FORMAT
        assert report["ok"] is True

    def test_json_flag_prints_the_report(self, chaos_corpus, capsys):
        code = main(["chaos", chaos_corpus, "--queries", "2",
                     "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == CHAOS_FORMAT

    def test_rejects_unreplicated_corpus(self, tmp_path, capsys):
        directory = str(tmp_path / "corpus1")
        build_corpus(random_corpus(37), directory, shards=2)
        code = main(["chaos", directory])
        assert code != 0
