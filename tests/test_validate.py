"""Unit tests for p-document validation."""

import pytest

from repro import NodeType, PDocument, PNode, validate_document
from repro.exceptions import ModelError
from repro.prxml.validate import collect_violations


def doc_with(child_builder):
    root = PNode("root")
    child_builder(root)
    return PDocument(root)


class TestValidateDocument:
    def test_valid_document_passes(self, figure1_doc):
        validate_document(figure1_doc)

    def test_mux_sum_above_one_rejected(self):
        def build(root):
            mux = root.add_child(PNode("MUX", NodeType.MUX))
            mux.add_child(PNode("a", edge_prob=0.7))
            mux.add_child(PNode("b", edge_prob=0.5))
        doc = doc_with(build)
        with pytest.raises(ModelError, match="MUX"):
            validate_document(doc)

    def test_mux_sum_exactly_one_allowed(self):
        def build(root):
            mux = root.add_child(PNode("MUX", NodeType.MUX))
            mux.add_child(PNode("a", edge_prob=0.5))
            mux.add_child(PNode("b", edge_prob=0.5))
        validate_document(doc_with(build))

    def test_mux_sum_tolerates_float_noise(self):
        def build(root):
            mux = root.add_child(PNode("MUX", NodeType.MUX))
            for _ in range(10):
                mux.add_child(PNode("x", edge_prob=0.1))
        validate_document(doc_with(build))

    def test_probability_out_of_range(self):
        def build(root):
            child = PNode("a")
            child.edge_prob = 1.5
            root.add_child(child)
        doc = doc_with(build)
        problems = collect_violations(doc)
        assert any("outside (0, 1]" in p for p in problems)

    def test_zero_probability_rejected(self):
        def build(root):
            child = PNode("a")
            child.edge_prob = 0.0
            root.add_child(child)
        with pytest.raises(ModelError):
            validate_document(doc_with(build))

    def test_childless_distributional_rejected(self):
        def build(root):
            ind = PNode("IND", NodeType.IND)
            root.add_child(ind)
        with pytest.raises(ModelError, match="without children"):
            validate_document(doc_with(build))

    def test_distributional_text_reported(self):
        def build(root):
            ind = root.add_child(PNode("IND", NodeType.IND))
            ind.add_child(PNode("a"))
            ind.text = "sneaky"  # bypass the constructor check
        problems = collect_violations(doc_with(build))
        assert any("has text" in p for p in problems)

    def test_strict_mode_rejects_probability_under_ordinary_parent(self):
        def build(root):
            root.add_child(PNode("a", edge_prob=0.5))
        doc = doc_with(build)
        validate_document(doc)  # lenient: fine
        with pytest.raises(ModelError, match="strict"):
            validate_document(doc, strict=True)

    def test_error_message_caps_listed_problems(self):
        def build(root):
            for _ in range(8):
                child = PNode("a")
                child.edge_prob = 2.0
                root.add_child(child)
        with pytest.raises(ModelError, match=r"\+3 more"):
            validate_document(doc_with(build))
