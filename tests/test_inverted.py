"""Unit tests for the inverted keyword index."""

from array import array

import pytest

from repro import DocumentBuilder, build_index, encode_document
from repro.exceptions import IndexError_, QueryError
from repro.index.inverted import InvertedIndex


@pytest.fixture
def library_index():
    builder = DocumentBuilder("library")
    with builder.element("book"):
        builder.leaf("title", text="xml keyword query")
        builder.leaf("author", text="li")
    with builder.element("book"):
        builder.leaf("title", text="probabilistic query")
        builder.leaf("author", text="liu")
    return build_index(encode_document(builder.build()))


class TestInvertedIndex:
    def test_postings_in_document_order(self, library_index):
        ids = list(library_index.postings("query"))
        assert ids == sorted(ids)
        assert len(ids) == 2

    def test_tag_terms_indexed(self, library_index):
        assert library_index.document_frequency("book") == 2
        assert library_index.document_frequency("title") == 2

    def test_missing_term_empty(self, library_index):
        assert len(library_index.postings("zebra")) == 0
        assert "zebra" not in library_index

    def test_case_insensitive_lookup(self, library_index):
        assert library_index.document_frequency("XML") == 1

    def test_node_matched_once_per_term(self, library_index):
        # "query query" style duplicates within one node collapse.
        for term in library_index.vocabulary():
            ids = list(library_index.postings(term))
            assert len(ids) == len(set(ids))

    def test_vocabulary_sorted(self, library_index):
        vocabulary = library_index.vocabulary()
        assert vocabulary == sorted(vocabulary)
        assert "keyword" in vocabulary

    def test_query_terms_validation(self, library_index):
        assert library_index.query_terms(["XML Keyword"]) == \
            ["xml", "keyword"]
        with pytest.raises(QueryError):
            library_index.query_terms([])
        with pytest.raises(QueryError):
            library_index.query_terms(["..."])

    def test_keyword_lists_align_with_terms(self, library_index):
        terms, lists = library_index.keyword_lists(["query", "zebra"])
        assert terms == ["query", "zebra"]
        assert len(lists[0]) == 2
        assert len(lists[1]) == 0

    def test_label_postings_exact_match(self, library_index):
        assert len(library_index.label_postings("book")) == 2
        assert len(library_index.label_postings("title")) == 2
        # Exact tags only: tokenised sub-terms do not count.
        assert len(library_index.label_postings("boo")) == 0

    def test_label_postings_excludes_distributional(self):
        from repro import DocumentBuilder, encode_document
        builder = DocumentBuilder("r")
        with builder.mux():
            builder.leaf("MUX", prob=0.5)  # ordinary node named "MUX"
        index = build_index(encode_document(builder.build()))
        ids = list(index.label_postings("MUX"))
        assert len(ids) == 1  # only the ordinary one

    def test_ordinary_ids_in_document_order(self, library_index):
        ids = list(library_index.ordinary_ids())
        assert ids == sorted(ids)
        assert len(ids) == len(library_index.encoded.document)

    def test_integrity_check_passes(self, library_index):
        library_index.check_integrity()

    def test_integrity_detects_out_of_range(self, library_index):
        broken = InvertedIndex(library_index.encoded,
                               {"bad": array("q", [999])})
        with pytest.raises(IndexError_, match="out of range"):
            broken.check_integrity()

    def test_integrity_detects_disorder(self, library_index):
        broken = InvertedIndex(library_index.encoded,
                               {"bad": array("q", [3, 2])})
        with pytest.raises(IndexError_, match="increasing"):
            broken.check_integrity()


class TestLabelCaseFolding:
    def test_label_lookup_case_insensitive(self):
        from repro import DocumentBuilder, encode_document
        builder = DocumentBuilder("Library")
        builder.leaf("Book", text="one")
        builder.leaf("book", text="two")
        index = build_index(encode_document(builder.build()))
        # Both tag spellings land in one folded bucket, and any lookup
        # case finds it — matching the term postings' behaviour.
        assert len(index.label_postings("book")) == 2
        assert len(index.label_postings("Book")) == 2
        assert len(index.label_postings("BOOK")) == 2

    def test_caller_supplied_map_is_folded(self, library_index):
        rebuilt = InvertedIndex(
            library_index.encoded, dict(library_index.raw_postings()),
            label_postings={"BOOK": array("q", [1])})
        assert list(rebuilt.label_postings("book")) == [1]
        assert list(rebuilt.label_postings("Book")) == [1]

    def test_default_map_derived_from_document(self, library_index):
        rebuilt = InvertedIndex(library_index.encoded,
                                dict(library_index.raw_postings()))
        assert list(rebuilt.label_postings("book")) == \
            list(library_index.label_postings("book"))
