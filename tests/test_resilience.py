"""Tests for repro.resilience: deadlines, anytime answers, retry and
degradation chains, the circuit breaker, and the fault-injection
harness (docs/RESILIENCE.md)."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.api import topk_search
from repro.exceptions import QueryError
from repro.obs.metrics import MetricsCollector
from repro.prxml.serializer import write_pxml_file
from repro.resilience import (NULL_DEADLINE, NULL_FAULTS, CircuitBreaker,
                              Deadline, Fault, FaultInjector,
                              InjectedFaultError, NullDeadline,
                              RetryPolicy, as_deadline, faults_from_env,
                              parse_faults)
from repro.service.service import QueryService


class TestDeadline:
    def test_requires_some_budget(self):
        with pytest.raises(QueryError):
            Deadline()

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_non_positive_time_budget(self, bad):
        with pytest.raises(QueryError):
            Deadline(budget_ms=bad)

    def test_rejects_negative_step_budget(self):
        with pytest.raises(QueryError):
            Deadline(max_steps=-1)

    def test_step_budget_expiry_is_sticky(self):
        deadline = Deadline(max_steps=2)
        assert not deadline.expired()
        assert not deadline.expired()
        assert deadline.expired()
        # Sticky: once expired, always expired.
        assert deadline.expired()
        assert deadline.reason == "step_budget"

    def test_time_budget_expires(self):
        deadline = Deadline(budget_ms=1.0)
        time.sleep(0.01)
        assert deadline.expired()
        assert deadline.reason == "deadline"

    def test_reason_before_expiry_is_complete(self):
        deadline = Deadline(budget_ms=60000.0)
        assert not deadline.expired()
        assert deadline.reason == "complete"

    def test_summary_is_json_safe(self):
        import json
        deadline = Deadline(budget_ms=5.0, max_steps=100)
        deadline.expired()
        json.dumps(deadline.summary())

    def test_null_deadline_never_expires(self):
        assert not NULL_DEADLINE.enabled
        assert not NULL_DEADLINE.expired()

    def test_as_deadline_coercions(self):
        assert as_deadline(None) is NULL_DEADLINE
        deadline = Deadline(max_steps=1)
        assert as_deadline(deadline) is deadline
        assert isinstance(as_deadline(NullDeadline()), NullDeadline)
        coerced = as_deadline(250)
        assert isinstance(coerced, Deadline)
        assert coerced.budget_ms == 250.0

    @pytest.mark.parametrize("bad", [True, False, "fast", []])
    def test_as_deadline_rejects_junk(self, bad):
        with pytest.raises(QueryError):
            as_deadline(bad)


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(max_retries=5, backoff_ms=10.0,
                             multiplier=2.0, max_backoff_ms=35.0)
        assert policy.delay_ms(1) == pytest.approx(10.0)
        assert policy.delay_ms(2) == pytest.approx(20.0)
        assert policy.delay_ms(3) == pytest.approx(35.0)  # capped
        assert policy.delay_ms(4) == pytest.approx(35.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(QueryError):
            RetryPolicy(max_retries=-1)


class TestCircuitBreaker:
    def test_opens_at_threshold_and_recovers(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=0.02)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.03)
        # Cooldown elapsed: half-open lets one probe through.
        assert breaker.state == "half-open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_summary_counts_opens_once(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=300.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.summary()["opens"] == 1


class TestFaultParsing:
    def test_round_trip(self):
        spec = "worker_crash:times=1;slow_query:delay_ms=5,terms=k1+k2"
        injector = parse_faults(spec, seed=3)
        again = parse_faults(injector.spec(), seed=3)
        assert again.spec() == injector.spec()

    def test_empty_spec_is_null(self):
        assert not parse_faults("").enabled
        assert not NULL_FAULTS.enabled

    @pytest.mark.parametrize("bad", [
        "nonsense:times=1",        # unknown kind
        "worker_crash:rate=2.0",   # rate out of range
        "slow_query:delay_ms=x",   # non-numeric
        "worker_crash:wat=1",      # unknown option
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_faults(bad)

    def test_env_activation(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not faults_from_env().enabled
        monkeypatch.setenv("REPRO_FAULTS", "query_error:times=1")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "5")
        injector = faults_from_env()
        assert injector.enabled
        assert injector.seed == 5


class TestFaultInjector:
    def test_query_error_respects_times(self):
        injector = FaultInjector([Fault(kind="query_error", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                injector.before_query(["k1"])
        injector.before_query(["k1"])  # exhausted: no raise
        assert injector.summary()["fired"]["query_error"] == 2

    def test_term_targeting(self):
        injector = FaultInjector(
            [Fault(kind="query_error", terms=("k9",))])
        injector.before_query(["k1", "k2"])  # no match: no raise
        with pytest.raises(InjectedFaultError):
            injector.before_query(["k1", "k9"])

    def test_slow_query_delays(self):
        injector = FaultInjector(
            [Fault(kind="slow_query", delay_ms=30.0, times=1)])
        started = time.monotonic()
        injector.before_query(["k1"])
        assert time.monotonic() - started >= 0.02

    def test_corrupt_garbles_payload(self):
        injector = FaultInjector([Fault(kind="corrupt_payload")])
        assert injector.corrupt("<a></a>") != "<a></a>"

    def test_rate_draws_are_seeded(self):
        def fired(seed):
            injector = FaultInjector(
                [Fault(kind="query_error", rate=0.5)], seed=seed)
            hits = 0
            for _ in range(20):
                try:
                    injector.before_query(["k1"])
                except InjectedFaultError:
                    hits += 1
            return hits

        assert fired(7) == fired(7)
        assert 0 < fired(7) < 20


class TestAnytimeResults:
    """Partial-result semantics: each harvested probability is exact
    for its node, and the partial set grows toward the exact answer."""

    KEYWORDS = ["k1", "k2"]

    def exact(self, db):
        outcome = topk_search(db, self.KEYWORDS, k=10)
        assert not outcome.partial
        return {str(r.code): r.probability for r in outcome.results}

    @pytest.mark.parametrize("algorithm", ["eager", "prstack"])
    def test_partial_probabilities_are_exact_per_node(
            self, figure1_db, algorithm):
        exact = self.exact(figure1_db)
        for steps in range(0, 9):
            outcome = topk_search(figure1_db, self.KEYWORDS, k=10,
                                  algorithm=algorithm,
                                  deadline=Deadline(max_steps=steps))
            if not outcome.partial:
                continue
            assert outcome.termination_reason == "step_budget"
            assert "deadline" in outcome.stats
            for result in outcome.results:
                assert str(result.code) in exact
                assert result.probability == \
                    pytest.approx(exact[str(result.code)], abs=0.0)

    def test_partial_sets_grow_monotonically(self, figure1_db):
        sizes = []
        for steps in range(0, 9):
            outcome = topk_search(figure1_db, self.KEYWORDS, k=10,
                                  algorithm="eager",
                                  deadline=Deadline(max_steps=steps))
            sizes.append(len(outcome.results))
        assert sizes == sorted(sizes)
        assert sizes[-1] == len(self.exact(figure1_db))

    @pytest.mark.parametrize("algorithm", ["eager", "prstack"])
    def test_unexpired_deadline_is_bit_identical(self, figure1_db,
                                                 algorithm):
        plain = topk_search(figure1_db, self.KEYWORDS, k=10,
                            algorithm=algorithm)
        generous = topk_search(figure1_db, self.KEYWORDS, k=10,
                               algorithm=algorithm,
                               deadline=Deadline(budget_ms=1e9))
        assert not generous.partial
        assert generous.termination_reason == "complete"
        assert [(str(r.code), r.probability) for r in plain.results] \
            == [(str(r.code), r.probability) for r in generous.results]

    def test_random_documents_partial_subset(self, pdoc_factory):
        for seed in range(5):
            doc = pdoc_factory(seed, max_nodes=24)
            exact = {str(r.code): r.probability
                     for r in topk_search(doc, self.KEYWORDS, k=50)}
            outcome = topk_search(doc, self.KEYWORDS, k=50,
                                  deadline=Deadline(max_steps=2))
            for result in outcome.results:
                assert result.probability == \
                    pytest.approx(exact[str(result.code)], abs=0.0)

    def test_deadline_counts_into_metrics(self, figure1_db):
        collector = MetricsCollector()
        outcome = topk_search(figure1_db, self.KEYWORDS, k=10,
                              collector=collector,
                              deadline=Deadline(max_steps=1))
        assert outcome.partial
        assert collector.snapshot()["counters"][
            "resilience.deadline_expired"] == 1

    def test_possible_worlds_ignores_deadline(self, figure1_db):
        outcome = topk_search(figure1_db, self.KEYWORDS, k=10,
                              algorithm="possible_worlds",
                              deadline=Deadline(max_steps=0))
        assert not outcome.partial


QUERIES = [["k1", "k2"], ["k1"], "k2 k1", ["k2"], ["k1", "k2"], ["k1"]]


def signature(outcome):
    return [(str(r.code), r.probability) for r in outcome.results]


class TestResilientBatch:
    def baseline(self, doc):
        return QueryService(doc).batch_search(QUERIES, workers=1)

    def test_batch_without_faults_is_identical(self, figure1_doc):
        doc = figure1_doc
        base = self.baseline(doc)
        assert all(not o.partial for o in base)
        res = base.stats["resilience"]
        assert res["retries"] == 0
        assert res["query_errors"] == 0
        assert res["circuit_breaker"]["state"] == "closed"

    def test_worker_crash_still_answers_every_query(self, figure1_doc):
        doc = figure1_doc
        base = self.baseline(doc)
        service = QueryService(doc, collector=MetricsCollector())
        faults = FaultInjector(
            [Fault(kind="worker_crash", times=1, delay_ms=150.0)],
            seed=7)
        batch = service.batch_search(QUERIES, workers=2,
                                     executor="process", faults=faults,
                                     max_retries=2)
        assert len(batch) == len(QUERIES)
        res = batch.stats["resilience"]
        assert res["worker_crashes"] >= 1
        assert res["chunk_failures"] >= 1
        assert res["degraded_to_thread"] >= 1
        assert res["query_errors"] == 0
        for expected, got in zip(base, batch):
            assert signature(expected) == signature(got)
        counters = service.collector.snapshot()["counters"]
        assert counters["resilience.worker_crashes"] >= 1

    def test_completed_chunks_survive_a_crash(self, figure1_doc):
        # The crash targets the term 'zzz', so only the chunk holding
        # that query dies — and it dies late (delay_ms), after the
        # healthy chunk's future has completed.  The healthy chunk's
        # results must be harvested, not re-run: only the crashed
        # chunk's queries show up as chunk failures.
        queries = [["k1"], ["k1", "k2"], ["k1"], ["zzz"]]
        service = QueryService(figure1_doc)
        faults = FaultInjector(
            [Fault(kind="worker_crash", terms=("zzz",),
                   delay_ms=400.0)], seed=7)
        batch = service.batch_search(queries, workers=2,
                                     executor="process", faults=faults,
                                     max_retries=2)
        res = batch.stats["resilience"]
        assert res["chunk_failures"] == 1
        assert res["chunk_failure_queries"] < len(queries)
        assert res["query_errors"] == 0
        assert len(batch) == len(queries)

    def test_exhausted_retries_become_attributed_errors(self, figure1_doc):
        doc = figure1_doc
        service = QueryService(doc)
        faults = FaultInjector(
            [Fault(kind="worker_crash", times=1, delay_ms=150.0)],
            seed=7)
        batch = service.batch_search(QUERIES, workers=2,
                                     executor="process", faults=faults,
                                     max_retries=0)
        assert len(batch) == len(QUERIES)
        errors = [o for o in batch if o.termination_reason == "error"]
        assert errors
        for outcome in errors:
            assert outcome.partial
            assert not outcome.results
            assert "BrokenProcessPool" in outcome.stats["error"]

    def test_serial_retry_recovers_transient_error(self, figure1_doc):
        doc = figure1_doc
        base = self.baseline(doc)
        service = QueryService(doc)
        faults = FaultInjector([Fault(kind="query_error", times=1)])
        batch = service.batch_search(QUERIES, workers=1, faults=faults,
                                     max_retries=2, backoff_ms=1.0)
        res = batch.stats["resilience"]
        assert res["retries"] == 1
        assert res["recovered_queries"] == 1
        for expected, got in zip(base, batch):
            assert signature(expected) == signature(got)

    def test_thread_executor_never_raises_on_query_error(self, figure1_doc):
        doc = figure1_doc
        service = QueryService(doc)
        faults = FaultInjector([Fault(kind="query_error", times=50)])
        batch = service.batch_search(QUERIES, workers=2,
                                     executor="thread", faults=faults,
                                     max_retries=1, backoff_ms=1.0)
        assert len(batch) == len(QUERIES)
        assert all(o.termination_reason == "error" for o in batch)

    def test_circuit_breaker_stops_respawning_pools(self, figure1_doc):
        doc = figure1_doc
        breaker = CircuitBreaker(threshold=2, cooldown_s=300.0)
        service = QueryService(doc, breaker=breaker)
        for seed in range(2):
            faults = FaultInjector([Fault(kind="worker_crash")],
                                   seed=seed)
            service.batch_search(QUERIES, workers=2,
                                 executor="process", faults=faults,
                                 max_retries=2)
        assert breaker.state == "open"
        faults = FaultInjector([Fault(kind="worker_crash")], seed=9)
        batch = service.batch_search(QUERIES, workers=2,
                                     executor="process", faults=faults,
                                     max_retries=2)
        # No pool: worker-side faults never fire; everything degrades
        # in-process and still completes.
        assert batch.stats["resilience"]["circuit_open_skips"] == 1
        assert all(o.termination_reason == "complete" for o in batch)

    def test_corrupt_payload_degrades_and_recovers(self, figure1_doc):
        doc = figure1_doc
        base = self.baseline(doc)
        service = QueryService(doc)
        faults = FaultInjector([Fault(kind="corrupt_payload")])
        batch = service.batch_search(QUERIES, workers=2,
                                     executor="process", faults=faults,
                                     max_retries=2)
        assert len(batch) == len(QUERIES)
        assert batch.stats["resilience"]["query_errors"] == 0
        for expected, got in zip(base, batch):
            assert signature(expected) == signature(got)

    def test_deadline_ms_yields_partials_not_errors(self, figure1_doc):
        doc = figure1_doc
        service = QueryService(doc)
        batch = service.batch_search(QUERIES, workers=1,
                                     deadline_ms=1e-4)
        assert len(batch) == len(QUERIES)
        assert all(o.termination_reason == "deadline" for o in batch)
        assert batch.stats["resilience"]["deadline_expired"] \
            == len(QUERIES)

    def test_validation(self, figure1_doc):
        doc = figure1_doc
        service = QueryService(doc)
        with pytest.raises(QueryError):
            service.batch_search(QUERIES, deadline_ms=0)
        with pytest.raises(QueryError):
            service.batch_search(QUERIES, max_retries=-1)

    def test_thread_pool_respects_worker_cap(self, figure1_doc, monkeypatch):
        import repro.service.service as service_module
        doc = figure1_doc
        service = QueryService(doc)
        seen = []
        real = service_module.ThreadPoolExecutor

        def spy(max_workers=None, **kwargs):
            seen.append(max_workers)
            return real(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(service_module, "ThreadPoolExecutor", spy)
        service.batch_search(QUERIES, workers=2, executor="thread")
        assert seen and all(workers <= 2 for workers in seen)

    def test_env_faults_reach_batch(self, figure1_doc, monkeypatch):
        doc = figure1_doc
        monkeypatch.setenv("REPRO_FAULTS", "query_error:times=1")
        service = QueryService(doc)
        batch = service.batch_search(QUERIES, workers=1,
                                     max_retries=1, backoff_ms=1.0)
        assert batch.stats["resilience"]["retries"] == 1
        assert all(o.termination_reason == "complete" for o in batch)


class TestPartialCaching:
    def test_partial_outcomes_never_cached(self, figure1_doc):
        doc = figure1_doc
        service = QueryService(doc)
        partial = service.search(["k1", "k2"], deadline=1e-4)
        assert partial.partial
        full = service.search(["k1", "k2"])
        assert not full.partial
        assert full.stats.get("service") != "result_cache"
        replay = service.search(["k1", "k2"])
        assert replay.stats.get("service") == "result_cache"
        assert not replay.partial

    def test_deadlined_query_bypasses_replay(self, figure1_doc):
        doc = figure1_doc
        service = QueryService(doc)
        service.search(["k1", "k2"])  # warm the result cache
        deadlined = service.search(["k1", "k2"],
                                   deadline=Deadline(max_steps=0))
        assert deadlined.partial
        assert deadlined.stats.get("service") != "result_cache"


class TestInterrupt:
    def test_sigint_mid_batch_exits_130(self, figure1_doc, tmp_path):
        if not hasattr(signal, "SIGINT"):  # pragma: no cover
            pytest.skip("no SIGINT on this platform")
        document = tmp_path / "doc.pxml"
        write_pxml_file(figure1_doc, str(document))
        queries = tmp_path / "q.txt"
        queries.write_text("k1 k2\nk1\nk2\n", encoding="utf-8")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src
        env["REPRO_FAULTS"] = "slow_query:delay_ms=10000"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch", str(document),
             str(queries)],
            env=env, cwd=str(tmp_path), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        time.sleep(2.5)  # let it get into the slow query
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 130, (stdout, stderr)
        assert "Traceback" not in stderr, stderr
        assert "interrupted" in stderr
