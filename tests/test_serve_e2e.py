"""End-to-end serving tests: graceful SIGTERM drain and hot reload
under load, against a real ``repro serve`` subprocess (the fourth
satellite of the serving PR).

Both scenarios hold a slow in-flight request open (the existing
``slow_query`` fault via ``REPRO_FAULTS``) and assert it completes on
the generation it captured while the disruption — shutdown or a
``POST /reload`` hot swap — happens around it.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.prxml.serializer import write_pxml_file

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM"), reason="needs POSIX signals")

#: k1 queries sleep this long in the engine; k2 queries are fast.
_SLOW_MS = 1500
_FAULTS = f"slow_query:terms=k1,delay_ms={_SLOW_MS}"


@pytest.fixture()
def served_database(tmp_path, figure1_doc):
    """A snapshot-generation database directory for the server."""
    document = tmp_path / "figure1.pxml"
    write_pxml_file(figure1_doc, str(document))
    database = tmp_path / "db"
    env = dict(os.environ, PYTHONPATH=_src_path())
    subprocess.run(
        [sys.executable, "-m", "repro", "index", str(document),
         str(database)],
        check=True, env=env, capture_output=True)
    return database


def _src_path():
    return os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")


def _start_server(database, extra_env=None):
    """``repro serve`` on an ephemeral port; returns (process, port)."""
    env = dict(os.environ, PYTHONPATH=_src_path(), **(extra_env or {}))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(database),
         "--port", "0", "--max-inflight", "4"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    line = process.stdout.readline()
    assert "serving on http://" in line, (line, process.stderr.read())
    port = int(line.split(":")[-1].split(" ")[0].rstrip("/"))
    return process, port


def _request(port, method, path, payload=None, timeout=30):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        body = json.dumps(payload).encode() \
            if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _wait_for_inflight(port, deadline_s=10.0):
    """Poll /health until at least one request holds a slot."""
    limit = time.time() + deadline_s
    while time.time() < limit:
        try:
            _, health = _request(port, "GET", "/health", timeout=5)
            if health["admission"]["inflight"] > 0:
                return health
        except OSError:
            pass
        time.sleep(0.02)
    raise AssertionError("no request became in-flight in time")


def _post_in_thread(port, payload, sink):
    def run():
        try:
            sink["response"] = _request(port, "POST", "/search",
                                        payload)
        except Exception as error:  # noqa: BLE001 - reported below
            sink["error"] = error

    thread = threading.Thread(target=run)
    thread.start()
    return thread


class TestSigtermDrain:
    def test_inflight_completes_on_its_generation_and_exit_0(
            self, served_database):
        process, port = _start_server(
            served_database, {"REPRO_FAULTS": _FAULTS})
        try:
            slow: dict = {}
            thread = _post_in_thread(port, {"keywords": ["k1"]}, slow)
            _wait_for_inflight(port)

            process.send_signal(signal.SIGTERM)

            # The listener closes promptly: new connections are
            # refused while the slow request is still draining.
            refused = False
            limit = time.time() + 10.0
            while time.time() < limit and not refused:
                try:
                    _request(port, "GET", "/health", timeout=2)
                    time.sleep(0.02)
                except OSError:
                    refused = True
            assert refused, "listener stayed open after SIGTERM"

            thread.join(timeout=30)
            assert "error" not in slow, slow.get("error")
            status, body = slow["response"]
            assert status == 200
            assert body["service_state"]["generation"] == "g00000001"
            assert body["service_state"]["epoch"] == 1

            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, (stdout, stderr)
            assert "Traceback" not in stderr, stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestSigtermWithIdleKeepAlive:
    def test_idle_connection_does_not_block_exit(
            self, served_database):
        """An idle keep-alive connection must not stall SIGTERM: its
        handler is parked in readuntil(), so the server has to close
        it proactively instead of awaiting Server.wait_closed() (which
        on Python >= 3.12.1 waits for every handler) or burning the
        full 30s drain timeout."""
        process, port = _start_server(served_database)
        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=10)
        try:
            connection.request("GET", "/health")
            response = connection.getresponse()
            health = json.loads(response.read())
            assert response.status == 200
            assert health["status"] == "ok"

            # The connection stays open and idle across the SIGTERM.
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=15)
            assert process.returncode == 0, (stdout, stderr)
            assert "Traceback" not in stderr, stderr
        finally:
            connection.close()
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestReloadUnderLoad:
    def test_reload_swaps_while_request_in_flight(
            self, served_database):
        process, port = _start_server(
            served_database, {"REPRO_FAULTS": _FAULTS})
        try:
            slow: dict = {}
            thread = _post_in_thread(port, {"keywords": ["k1"]}, slow)
            health = _wait_for_inflight(port)
            assert health["epoch"] == 1

            # The reload runs on the event loop's default executor,
            # not the request pool, so it lands while the slow query
            # still holds an admission slot.
            status, body = _request(port, "POST", "/reload", {})
            assert status == 200, body
            assert body["epoch"] == 2
            assert thread.is_alive(), \
                "reload queued behind the in-flight request"

            # The swap never disrupts the in-flight request: it
            # completes with a full answer on one consistent state.
            # The injected stall sits before the service dereferences
            # its generation (a stall eats its own query's budget), so
            # the late dereference sees the post-swap state whole.
            thread.join(timeout=30)
            assert "error" not in slow, slow.get("error")
            status, slow_body = slow["response"]
            assert status == 200
            assert slow_body["results"]
            assert slow_body["service_state"]["epoch"] == 2

            # New queries run on the swapped state.
            status, fresh = _request(port, "POST", "/search",
                                     {"keywords": ["k2"]})
            assert status == 200
            assert fresh["service_state"]["epoch"] == 2

            _, health = _request(port, "GET", "/health")
            assert health["epoch"] == 2
            assert health["status"] == "ok"

            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, (stdout, stderr)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
