"""Unit tests for the PrStack algorithm (Algorithm 1)."""

import pytest

from repro import Database, prstack_search


class TestPrStackOnPaperFixtures:
    def test_example_6_value(self, fragment_db):
        """Pr_slca(C1) = Pr(path) * tab[11] = 0.15 * 0.063 = 0.00945."""
        outcome = prstack_search(fragment_db.index, ["k1", "k2"], k=5)
        assert len(outcome) == 1
        result = outcome.results[0]
        assert str(result.code) == "1.M1.I1.1"
        assert result.probability == pytest.approx(0.00945)

    def test_figure1_results_all_ordinary(self, figure1_db):
        outcome = prstack_search(figure1_db.index, ["k1", "k2"], k=20)
        assert len(outcome) >= 2
        for result in outcome:
            node = figure1_db.encoded.node_at(result.code)
            assert node.is_ordinary
            assert 0.0 < result.probability <= 1.0

    def test_results_sorted_by_probability(self, figure1_db):
        outcome = prstack_search(figure1_db.index, ["k1", "k2"], k=20)
        probabilities = outcome.probabilities()
        assert probabilities == sorted(probabilities, reverse=True)

    def test_k_truncates(self, figure1_db):
        full = prstack_search(figure1_db.index, ["k1", "k2"], k=20)
        top2 = prstack_search(figure1_db.index, ["k1", "k2"], k=2)
        assert len(top2) == min(2, len(full))
        assert top2.probabilities() == full.probabilities()[:2]

    def test_missing_keyword_returns_empty(self, figure1_db):
        outcome = prstack_search(figure1_db.index, ["k1", "zebra"], k=5)
        assert len(outcome) == 0
        assert outcome.stats["entries_scanned"] == 0

    def test_single_keyword(self, fragment_db):
        outcome = prstack_search(fragment_db.index, ["k1"], k=10)
        codes = {str(r.code) for r in outcome}
        # D1, D2 match k1 directly; their ancestors may also score.
        assert "1.M1.I1.1.M1.1" in codes
        by_code = {str(r.code): r.probability for r in outcome}
        # D1 exists with probability 0.15 * 0.5 and, existing, is
        # always its own SLCA (leaf).
        assert by_code["1.M1.I1.1.M1.1"] == pytest.approx(0.075)

    def test_stats_populated(self, figure1_db):
        outcome = prstack_search(figure1_db.index, ["k1", "k2"], k=5)
        stats = outcome.stats
        assert stats["algorithm"] == "prstack"
        assert stats["terms"] == 2
        assert stats["match_entries"] > 0
        assert stats["entries_scanned"] == stats["match_entries"]
        assert stats["frames_pushed"] > 0

    def test_probability_never_exceeds_path_probability(self, figure1_db):
        outcome = prstack_search(figure1_db.index, ["k1", "k2"], k=50)
        for result in outcome:
            node = figure1_db.encoded.node_at(result.code)
            assert result.probability <= node.path_probability() + 1e-12

    def test_accepts_database_index(self, figure1_doc):
        database = Database.from_document(figure1_doc)
        outcome = prstack_search(database.index, ["k1"], k=3)
        assert len(outcome) == 3
