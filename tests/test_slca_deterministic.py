"""Unit tests for SLCA on deterministic instance trees."""

from repro.prxml.possible_worlds import DetNode
from repro.slca.deterministic import keyword_mask_of_det_node, slca_of_world


def det(label, text=None, children=(), source_id=0):
    node = DetNode(label, text, source_id)
    node.children = list(children)
    return node


class TestKeywordMask:
    def test_label_and_text(self):
        node = det("title", "xml query")
        assert keyword_mask_of_det_node(node, ["xml", "title"]) == 0b11
        assert keyword_mask_of_det_node(node, ["zebra"]) == 0

    def test_case_insensitive(self):
        node = det("Title", "XML")
        assert keyword_mask_of_det_node(node, ["xml"]) == 0b1


class TestSlcaOfWorld:
    def test_single_node_covering_all(self):
        root = det("r", "k1 k2", source_id=1)
        answers = slca_of_world(root, ["k1", "k2"])
        assert [n.source_id for n in answers] == [1]

    def test_lowest_node_wins(self):
        leaf = det("leaf", "k1 k2", source_id=3)
        mid = det("mid", None, [leaf], source_id=2)
        root = det("r", None, [mid], source_id=1)
        answers = slca_of_world(root, ["k1", "k2"])
        assert [n.source_id for n in answers] == [3]

    def test_combined_children(self):
        left = det("a", "k1", source_id=2)
        right = det("b", "k2", source_id=3)
        root = det("r", None, [left, right], source_id=1)
        answers = slca_of_world(root, ["k1", "k2"])
        assert [n.source_id for n in answers] == [1]

    def test_multiple_slcas(self):
        group1 = det("g", None,
                     [det("a", "k1", source_id=3),
                      det("b", "k2", source_id=4)], source_id=2)
        group2 = det("g", "k1 k2", source_id=5)
        root = det("r", None, [group1, group2], source_id=1)
        answers = slca_of_world(root, ["k1", "k2"])
        assert sorted(n.source_id for n in answers) == [2, 5]

    def test_partial_coverage_no_answer(self):
        root = det("r", "k1", source_id=1)
        assert slca_of_world(root, ["k1", "k2"]) == []

    def test_empty_query(self):
        assert slca_of_world(det("r", "k1"), []) == []

    def test_ancestor_of_slca_excluded(self):
        leaf = det("leaf", "k1 k2", source_id=3)
        mid = det("mid", "k1", [leaf], source_id=2)
        root = det("r", "k2", [mid], source_id=1)
        answers = slca_of_world(root, ["k1", "k2"])
        assert [n.source_id for n in answers] == [3]
