"""Tests for QueryService hot reload (docs/STORAGE.md).

The swap contract: a reload installs a fully-built new generation with
one atomic reference assignment; every query runs entirely against the
generation it captured (index + caches + result LRU from one state),
failed reloads are rejected while the old generation keeps serving,
and the ``storage`` stats block reports what is being served.
"""

import threading

import pytest

from repro import (Database, DocumentBuilder, QueryService,
                   save_database, topk_search)
from repro.exceptions import StorageError
from repro.obs import MetricsCollector
from repro.resilience import parse_faults


def build_doc(texts):
    builder = DocumentBuilder("root")
    for text, prob in texts:
        builder.leaf("item", text=text, prob=prob)
    return builder.build()


@pytest.fixture
def doc_a():
    return build_doc([("common alpha", 0.5), ("common", 0.5),
                      ("alpha", 0.9)])


@pytest.fixture
def doc_b():
    return build_doc([("common bravo", 0.25), ("common", 0.25),
                      ("common", 0.25), ("bravo", 0.8)])


def expected(document, terms):
    outcome = topk_search(Database.from_document(document), terms, 10,
                          "prstack")
    return [(str(r.code), round(r.probability, 12))
            for r in outcome.results]


def observed(outcome):
    return [(str(r.code), round(r.probability, 12))
            for r in outcome.results]


class TestReloadBasics:
    def test_reload_from_directory_picks_up_new_generation(
            self, doc_a, doc_b, tmp_path):
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        assert observed(service.search(["common"])) == \
            expected(doc_a, ["common"])
        save_database(Database.from_document(doc_b), directory)
        state = service.reload()
        assert state.generation == "g00000002"
        assert observed(service.search(["common"])) == \
            expected(doc_b, ["common"])

    def test_reload_does_not_replay_old_generation_cache(
            self, doc_a, doc_b, tmp_path):
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        first = service.search(["common"])
        again = service.search(["common"])
        assert again.stats.get("service") == "result_cache"
        save_database(Database.from_document(doc_b), directory)
        service.reload()
        fresh = service.search(["common"])
        # A replay of generation A's cached answer here would be
        # silently wrong; the state swap must drop it.
        assert fresh.stats.get("service") != "result_cache"
        assert observed(fresh) != observed(first)

    def test_reload_without_directory_provenance_is_rejected(
            self, doc_a):
        service = QueryService(Database.from_document(doc_a))
        with pytest.raises(StorageError, match="no source"):
            service.reload()
        # ... but an explicit source works.
        service.reload(Database.from_document(doc_a))
        assert service.storage_stats()["epoch"] == 2

    def test_failed_reload_keeps_old_generation_serving(
            self, doc_a, tmp_path):
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        baseline = observed(service.search(["common"]))
        with pytest.raises(StorageError,
                           match="previous generation keeps serving"):
            service.reload(str(tmp_path / "absent"))
        stats = service.storage_stats()
        assert stats["generation"] == "g00000001"
        assert stats["reloads"]["rejected"] == 1
        assert "absent" in stats["reloads"]["last_error"]
        assert observed(service.search(["common"])) == baseline

    def test_injected_reload_corrupt_fault_rejects(self, doc_a,
                                                   tmp_path):
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        injector = parse_faults(
            "reload_corrupt:times=1,message=checksum blown")
        with pytest.raises(StorageError, match="checksum blown"):
            service.reload(faults=injector)
        assert service.storage_stats()["reloads"]["rejected"] == 1
        # The fault is exhausted (times=1): the next reload succeeds.
        state = service.reload(faults=injector)
        assert state.epoch == 2

    def test_reload_counters_reach_collector(self, doc_a, tmp_path):
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        collector = MetricsCollector()
        service = QueryService(str(directory), collector=collector)
        service.reload()
        with pytest.raises(StorageError):
            service.reload(str(tmp_path / "absent"))
        counters = collector.snapshot()["counters"]
        assert counters["service.reload.attempts"] == 2
        assert counters["service.reload.successes"] == 1
        assert counters["service.reload.rejected"] == 1

    def test_batch_stats_carry_storage_block(self, doc_a, tmp_path):
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        batch = service.batch_search(["common", "alpha"], k=5)
        storage = batch.stats["storage"]
        assert storage["generation"] == "g00000001"
        assert storage["epoch"] == 1
        assert storage["reloads"]["attempts"] == 0


class TestReloadHammer:
    def test_queries_always_see_exactly_one_generation(
            self, doc_a, doc_b, tmp_path):
        """The concurrency hammer: worker threads query continuously
        while the main thread flips the database back and forth.
        Every single outcome must equal generation A's exact answers
        or generation B's exact answers — any other value means a
        query straddled the swap."""
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        legal = {tuple(expected(doc_a, ["common"])),
                 tuple(expected(doc_b, ["common"]))}
        assert len(legal) == 2  # the generations must be tellable apart

        stop = threading.Event()
        errors = []
        illegal = []

        def hammer():
            while not stop.is_set():
                try:
                    outcome = service.search(["common"])
                except Exception as error:  # pragma: no cover - fails test
                    errors.append(error)
                    return
                row = tuple(observed(outcome))
                if row not in legal:
                    illegal.append(row)  # pragma: no cover - fails test
                    return

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            documents = [doc_b, doc_a]
            for flip in range(6):
                save_database(
                    Database.from_document(documents[flip % 2]),
                    directory)
                service.reload()
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=10)
        assert not errors, errors[:1]
        assert not illegal, illegal[:1]
        stats = service.storage_stats()
        assert stats["reloads"]["successes"] == 6
        assert stats["epoch"] == 7

    def test_batch_in_flight_during_reload_stays_consistent(
            self, doc_a, doc_b, tmp_path):
        """A threaded batch keeps running while a reload lands; every
        outcome still matches one generation exactly."""
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        legal = {tuple(expected(doc_a, ["common"])),
                 tuple(expected(doc_b, ["common"]))}

        reloaded = []

        def flip():
            save_database(Database.from_document(doc_b), directory)
            reloaded.append(service.reload())

        flipper = threading.Timer(0.01, flip)
        flipper.start()
        try:
            batch = service.batch_search(["common"] * 300, k=10,
                                         workers=4, executor="thread")
        finally:
            flipper.join()
        assert reloaded and reloaded[0].generation == "g00000002"
        for outcome in batch:
            assert tuple(observed(outcome)) in legal


class TestHealthSnapshotCoherence:
    def test_reload_storm_never_tears_the_health_view(
            self, doc_a, tmp_path):
        """The torn-snapshot regression (docs/SERVING.md): under a
        storm of concurrent reloads, every ``health_snapshot()`` must
        satisfy ``epoch == 1 + successful reloads`` — the invariant a
        field-by-field read (state deref, then counter lock) breaks
        when a reload lands between the two reads."""
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))

        stop = threading.Event()
        torn = []
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    snap = service.health_snapshot()
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return
                if snap["epoch"] != 1 + snap["reloads"]["successes"]:
                    torn.append(snap)  # pragma: no cover - fails test
                    return

        def reloader():
            for _ in range(20):
                try:
                    service.reload()
                except StorageError as error:  # pragma: no cover
                    errors.append(error)
                    return

        readers = [threading.Thread(target=reader) for _ in range(3)]
        reloaders = [threading.Thread(target=reloader)
                     for _ in range(3)]
        for thread in readers + reloaders:
            thread.start()
        for thread in reloaders:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert not errors
        assert not torn
        final = service.health_snapshot()
        assert final["epoch"] == 61  # 1 + 3 threads x 20 reloads
        assert final["reloads"]["attempts"] == 60
        assert final["breaker"]["state"] == "closed"

    def test_snapshot_matches_storage_stats_at_rest(self, doc_a,
                                                    tmp_path):
        directory = tmp_path / "db"
        save_database(Database.from_document(doc_a), directory)
        service = QueryService(str(directory))
        service.reload()
        snap = service.health_snapshot()
        stats = service.storage_stats()
        assert snap["generation"] == stats["generation"]
        assert snap["epoch"] == stats["epoch"] == 2
        assert snap["reloads"] == stats["reloads"]
