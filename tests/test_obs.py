"""Unit tests for the observability primitives (repro.obs)."""

import json
import logging
import time

import pytest

from repro.obs import (MetricsCollector, NULL_COLLECTOR, Stopwatch,
                       TraceRecorder, configure_logging, get_logger)
from repro.obs.metrics import Histogram, NullCollector
from repro.obs.report import (ReportError, SCHEMA_ID, build_report,
                              validate_report)
from repro.obs.trace import render_trace


class TestHistogram:
    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def test_streaming_summary(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot == {"count": 3, "sum": 15.0, "min": 2.0,
                            "max": 8.0, "mean": 5.0}

    def test_scale_converts_units(self):
        histogram = Histogram()
        histogram.observe(0.25)
        snapshot = histogram.snapshot(scale=1000.0)
        assert snapshot["sum"] == 250.0
        assert snapshot["mean"] == 250.0


class TestStopwatch:
    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.01
        assert watch.elapsed_ms == pytest.approx(watch.elapsed * 1000.0)

    def test_elapsed_frozen_after_stop(self):
        watch = Stopwatch().start()
        frozen = watch.stop()
        time.sleep(0.005)
        assert watch.elapsed == frozen

    def test_restart_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.002)
        first = watch.elapsed
        with watch:
            time.sleep(0.002)
        assert watch.elapsed > first

    def test_live_reading_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.002)
        assert watch.elapsed > 0.0


class TestNullCollector:
    def test_is_disabled_and_traceless(self):
        assert NULL_COLLECTOR.enabled is False
        assert NULL_COLLECTOR.trace is None

    def test_all_hooks_are_noops(self):
        NULL_COLLECTOR.count("x")
        NULL_COLLECTOR.observe("x", 1.0)
        NULL_COLLECTOR.observe_time("x", 1.0)
        NULL_COLLECTOR.event("x", detail=1)
        with NULL_COLLECTOR.time("x"):
            pass
        assert NULL_COLLECTOR.snapshot() == {}

    def test_allocates_no_state(self):
        assert not hasattr(NullCollector(), "__dict__")


class TestMetricsCollector:
    def test_counters(self):
        collector = MetricsCollector()
        collector.count("frames")
        collector.count("frames", 4)
        assert collector.counter("frames") == 5
        assert collector.counter("never") == 0

    def test_histograms_and_timers(self):
        collector = MetricsCollector()
        collector.observe("depth", 3)
        collector.observe("depth", 7)
        collector.observe_time("scan", 0.5)
        snapshot = collector.snapshot()
        assert snapshot["histograms"]["depth"]["mean"] == 5.0
        # timers are reported in milliseconds
        assert snapshot["timers"]["scan"]["sum"] == 500.0

    def test_time_context_manager(self):
        collector = MetricsCollector()
        with collector.time("work"):
            time.sleep(0.002)
        summary = collector.snapshot()["timers"]["work"]
        assert summary["count"] == 1
        assert summary["sum"] >= 2.0  # ms

    def test_events_need_tracing(self):
        silent = MetricsCollector()
        silent.event("step", value=1)
        assert silent.trace is None

        tracing = MetricsCollector(trace=True)
        tracing.event("step", value=1)
        assert len(tracing.trace) == 1
        assert tracing.trace.events[0].fields == {"value": 1}

    def test_snapshot_is_sorted_and_json_safe(self):
        collector = MetricsCollector()
        collector.count("b")
        collector.count("a")
        snapshot = collector.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)  # must not raise


class TestTraceRecorder:
    def test_sequencing_and_offsets(self):
        recorder = TraceRecorder()
        recorder.record("first", x=1)
        recorder.record("second")
        dicts = recorder.as_dicts()
        assert [event["seq"] for event in dicts] == [0, 1]
        assert dicts[0]["name"] == "first"
        assert dicts[0]["x"] == 1
        assert dicts[0]["offset_ms"] >= 0.0

    def test_cap_drops_beyond_max(self):
        recorder = TraceRecorder(max_events=2)
        for _ in range(5):
            recorder.record("e")
        assert len(recorder) == 2
        assert recorder.dropped == 3

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)

    def test_render_handles_missing_trace(self):
        assert render_trace(None) == ["  (no trace recorded)"]

    def test_render_reports_truncation(self):
        recorder = TraceRecorder(max_events=3)
        for _ in range(5):
            recorder.record("step", n=1)
        lines = render_trace(recorder, limit=2)
        assert any("1 more event(s) not shown" in line for line in lines)
        assert any("2 event(s) dropped" in line for line in lines)


class TestLogging:
    def test_get_logger_prefixes(self):
        assert get_logger("core.eager").name == "repro.core.eager"
        assert get_logger("repro.core.eager").name == "repro.core.eager"
        assert get_logger().name == "repro"

    def test_configure_is_idempotent(self):
        logger = configure_logging(verbose=True)
        before = len(logger.handlers)
        configure_logging(verbose=False)
        configure_logging(verbose=False)
        assert len(logger.handlers) == before
        assert logger.level == logging.WARNING

    def test_verbose_sets_debug(self):
        assert configure_logging(verbose=True).level == logging.DEBUG


class TestReportValidation:
    def _minimal(self):
        return {
            "schema": SCHEMA_ID,
            "query": {"keywords": ["k1"], "k": 5,
                      "algorithm": "eager", "semantics": "slca"},
            "elapsed_ms": 1.5,
            "result_count": 0,
            "results": [],
            "stats": {},
            "metrics": {},
        }

    def test_accepts_minimal_report(self):
        report = self._minimal()
        assert validate_report(report) is report

    def test_rejects_non_object(self):
        with pytest.raises(ReportError, match="must be an object"):
            validate_report([1, 2])

    def test_rejects_missing_key(self):
        report = self._minimal()
        del report["metrics"]
        with pytest.raises(ReportError, match="metrics"):
            validate_report(report)

    def test_rejects_unknown_schema(self):
        report = self._minimal()
        report["schema"] = "repro.metrics/v0"
        with pytest.raises(ReportError, match="unknown schema"):
            validate_report(report)

    def test_rejects_count_mismatch(self):
        report = self._minimal()
        report["result_count"] = 3
        with pytest.raises(ReportError, match="result_count"):
            validate_report(report)

    def test_rejects_malformed_metrics(self):
        report = self._minimal()
        report["metrics"] = {"counters": {"n": 1}, "histograms": {},
                             "timers": {"t": {"count": 1}}}
        with pytest.raises(ReportError, match="timers"):
            validate_report(report)

    def test_rejects_boolean_numbers(self):
        report = self._minimal()
        report["elapsed_ms"] = True
        with pytest.raises(ReportError, match="elapsed_ms"):
            validate_report(report)

    def test_rejects_malformed_trace(self):
        report = self._minimal()
        report["trace"] = [{"seq": 0}]
        with pytest.raises(ReportError, match="trace"):
            validate_report(report)
