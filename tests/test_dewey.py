"""Unit tests for extended Dewey codes."""

import pytest

from repro import DeweyCode, NodeType
from repro.encoding.dewey import (common_prefix_length,
                                  lowest_common_ancestor)
from repro.exceptions import EncodingError


def code(text: str) -> DeweyCode:
    return DeweyCode.parse(text)


class TestParseAndFormat:
    def test_round_trip(self):
        for text in ("1", "1.M1.I2.1", "1.M1.4.3.M1.2", "1.2.3.4.5"):
            assert str(code(text)) == text

    def test_kinds_from_markers(self):
        parsed = code("1.M1.I2.1")
        assert parsed.kinds == (NodeType.ORDINARY, NodeType.MUX,
                                NodeType.IND, NodeType.ORDINARY)
        assert parsed.positions == (1, 1, 2, 1)
        assert parsed.node_type is NodeType.ORDINARY
        assert code("1.M1").node_type is NodeType.MUX

    def test_parse_rejects_garbage(self):
        for bad in ("", "1..2", "1.Mx", "a.b", "1.-2", "1.M"):
            with pytest.raises(EncodingError):
                code(bad)

    def test_constructor_validation(self):
        with pytest.raises(EncodingError):
            DeweyCode((), ())
        with pytest.raises(EncodingError):
            DeweyCode((1, 0), (NodeType.ORDINARY, NodeType.ORDINARY))
        with pytest.raises(EncodingError):
            DeweyCode((1,), (NodeType.ORDINARY, NodeType.MUX))


class TestStructure:
    def test_root_and_child(self):
        root = DeweyCode.root()
        child = root.child(2, NodeType.IND)
        assert str(child) == "1.I2"
        assert child.parent() == root
        with pytest.raises(EncodingError):
            root.parent()

    def test_prefix_bounds(self):
        parsed = code("1.M1.3")
        assert str(parsed.prefix(2)) == "1.M1"
        with pytest.raises(EncodingError):
            parsed.prefix(0)
        with pytest.raises(EncodingError):
            parsed.prefix(4)

    def test_iter_prefixes(self):
        parsed = code("1.M1.3")
        assert [str(p) for p in parsed.iter_prefixes()] == \
            ["1", "1.M1", "1.M1.3"]


class TestRelations:
    def test_document_order_ignores_kind_markers(self):
        assert code("1.I1") < code("1.2")
        assert code("1.M2") > code("1.1.5")
        assert code("1.1") < code("1.1.1")
        assert sorted([code("1.2"), code("1.I1.9"), code("1")]) == \
            [code("1"), code("1.I1.9"), code("1.2")]

    def test_ancestor_tests(self):
        assert code("1.M1").is_ancestor_of(code("1.M1.I2.1"))
        assert not code("1.M1").is_ancestor_of(code("1.M1"))
        assert code("1.M1").is_ancestor_or_self_of(code("1.M1"))
        assert not code("1.2").is_ancestor_of(code("1.21"))

    def test_subtree_upper_bound_brackets_descendants(self):
        parent = code("1.2")
        upper = parent.subtree_upper_bound()
        assert parent.positions <= code("1.2.9.9").positions < upper
        assert code("1.3").positions >= upper

    def test_common_prefix_and_lca(self):
        left, right = code("1.M1.I2.1.M1.1"), code("1.M1.I2.2")
        assert common_prefix_length(left, right) == 3
        assert str(lowest_common_ancestor(left, right)) == "1.M1.I2"

    def test_lca_requires_shared_root(self):
        with pytest.raises(EncodingError):
            lowest_common_ancestor(code("1"), code("2"))

    def test_equality_and_hash(self):
        assert code("1.M1") == code("1.M1")
        assert hash(code("1.M1")) == hash(code("1.M1"))
        # Order (and identity) is position-based; kinds are metadata.
        assert code("1.I1") == code("1.M1") or True
        assert len({code("1.2"), code("1.2"), code("1.3")}) == 2
