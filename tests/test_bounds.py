"""Unit tests for the sound pruning bounds (corrected Properties 1-5)."""

import pytest

from repro import NodeType
from repro.core.bounds import (RegionBound, candidate_bounds,
                               coverage_complement)


def region(group, cover):
    return RegionBound(group, cover)


class TestCoverageComplement:
    def test_no_regions_is_one(self):
        assert coverage_complement(NodeType.ORDINARY, []) == 1.0

    def test_ind_groups_multiply(self):
        value = coverage_complement(
            NodeType.IND, [region(1, 0.5), region(2, 0.2)])
        assert value == pytest.approx(0.5 * 0.8)

    def test_ordinary_same_as_ind(self):
        regions = [region(1, 0.5), region(2, 0.2)]
        assert coverage_complement(NodeType.ORDINARY, regions) == \
            coverage_complement(NodeType.IND, regions)

    def test_same_group_takes_strongest_only(self):
        """Regions sharing a child subtree may be positively correlated
        (the soundness fix): only the maximum counts."""
        value = coverage_complement(
            NodeType.ORDINARY, [region(1, 0.5), region(1, 0.4)])
        assert value == pytest.approx(0.5)

    def test_mux_groups_add(self):
        value = coverage_complement(
            NodeType.MUX, [region(1, 0.5), region(2, 0.3)])
        assert value == pytest.approx(0.2)

    def test_mux_clamped_at_zero(self):
        value = coverage_complement(
            NodeType.MUX, [region(1, 0.7), region(2, 0.6)])
        assert value == 0.0


class TestCandidateBounds:
    def test_node_bound_scales_with_path(self):
        path_bound, node_bound = candidate_bounds(
            NodeType.ORDINARY, 0.4, [region(1, 0.5)])
        assert node_bound == pytest.approx(0.4 * 0.5)
        assert path_bound == pytest.approx(0.6 + 0.2)

    def test_paper_counterexample_stays_sound(self):
        """Two perfectly correlated sibling regions under one shared
        0.42 edge: the paper's printed product bound gives 0.3364, but
        the true path mass is 0.58.  Our bound conditions on the IND
        candidate and yields a value >= 0.58."""
        # Both regions hang under the same IND candidate whose own path
        # probability is 0.42; given the candidate exists, each covers
        # with probability 1 (different child groups).
        path_bound, _ = candidate_bounds(
            NodeType.IND, 0.42, [region(1, 1.0), region(2, 1.0)])
        assert path_bound == pytest.approx(0.58)
        assert path_bound >= 0.58 - 1e-12

    def test_certain_candidate_with_no_regions(self):
        path_bound, node_bound = candidate_bounds(NodeType.ORDINARY,
                                                  1.0, [])
        assert path_bound == 1.0
        assert node_bound == 1.0

    def test_bounds_monotone_in_coverage(self):
        weak = candidate_bounds(NodeType.ORDINARY, 0.8,
                                [region(1, 0.2)])
        strong = candidate_bounds(NodeType.ORDINARY, 0.8,
                                  [region(1, 0.9)])
        assert strong[0] <= weak[0]
        assert strong[1] <= weak[1]
