"""Tests for the query service: caching, batching, executors."""

import random

import pytest

from repro import topk_search
from repro.exceptions import QueryError
from repro.obs import MetricsCollector
from repro.service import QueryService, load_query_file
from repro.service.service import _chunked


def signature(outcome):
    return [(str(result.code), result.probability)
            for result in outcome.results]


class TestSearchEquivalence:
    @pytest.mark.parametrize("algorithm,semantics", [
        ("prstack", "slca"), ("eager", "slca"),
        ("prstack", "elca"), ("possible_worlds", "slca")])
    def test_cold_warm_and_plain_identical(self, figure1_db, algorithm,
                                           semantics):
        service = QueryService(figure1_db)
        plain = topk_search(figure1_db, ["k1", "k2"], 3, algorithm,
                            semantics=semantics)
        cold = service.search(["k1", "k2"], 3, algorithm,
                              semantics=semantics)
        # Reversed keyword order canonicalises to the same term set,
        # so this replays the cached outcome.
        warm = service.search(["k2", "k1"], 3, algorithm,
                              semantics=semantics)
        assert signature(cold) == signature(plain)
        assert signature(warm) == signature(plain)
        assert "service" not in cold.stats
        assert warm.stats["service"] == "result_cache"

    def test_replay_does_not_alias_stats(self, figure1_db):
        service = QueryService(figure1_db)
        service.search(["k1"], 2)
        first = service.search(["k1"], 2)
        first.stats["scribble"] = True
        second = service.search(["k1"], 2)
        assert "scribble" not in second.stats

    def test_instrumented_query_bypasses_result_cache(self, figure1_db):
        service = QueryService(figure1_db)
        service.search(["k1", "k2"], 3)
        collector = MetricsCollector()
        outcome = service.search(["k1", "k2"], 3, collector=collector)
        assert "service" not in outcome.stats
        assert outcome.stats["metrics"]["counters"]

    def test_sanitized_query_really_runs(self, figure1_db):
        service = QueryService(figure1_db)
        service.search(["k1", "k2"], 3)
        outcome = service.search(["k1", "k2"], 3, sanitize=True)
        assert "service" not in outcome.stats
        assert outcome.stats["sanitizer"]["checks"] > 0
        assert signature(outcome) == \
            signature(service.search(["k1", "k2"], 3))

    def test_topk_search_delegates_to_service(self, figure1_db):
        service = QueryService(figure1_db)
        first = topk_search(service, ["k1", "k2"], 3)
        again = topk_search(service, ["k1", "k2"], 3)
        assert signature(first) == \
            signature(topk_search(figure1_db, ["k1", "k2"], 3))
        assert again.stats["service"] == "result_cache"

    def test_validation_applies(self, figure1_db):
        service = QueryService(figure1_db)
        with pytest.raises(QueryError, match="must be positive"):
            service.search(["k1"], 0)
        with pytest.raises(QueryError, match="duplicate"):
            service.search(["k1", "K1"], 3)
        with pytest.raises(QueryError, match="no indexable terms"):
            service.search(["..."], 3)


class TestEviction:
    def test_tiny_cache_evicts_and_stays_correct(self, figure1_db):
        service = QueryService(figure1_db, cache_size=1)
        queries = [["k1"], ["k2"], ["k1", "k2"], ["k1"], ["k2"]]
        for query in queries:
            got = service.search(query, 3)
            assert signature(got) == \
                signature(topk_search(figure1_db, query, 3))
        stats = service.cache_stats()
        assert stats["results"]["evictions"] > 0
        assert stats["results"]["size"] <= 1
        assert stats["match_entries"]["capacity"] == 1

    def test_invalid_capacity_rejected(self, figure1_db):
        with pytest.raises(ValueError, match="capacity"):
            QueryService(figure1_db, cache_size=0)

    def test_clear_caches(self, figure1_db):
        service = QueryService(figure1_db)
        service.search(["k1"], 3)
        service.search(["k1"], 3)
        assert service.cache_stats()["results"]["size"] == 1
        service.clear_caches()
        stats = service.cache_stats()
        assert stats["results"]["size"] == 0
        assert stats["match_entries"]["size"] == 0
        assert stats["path_probs"]["size"] == 0
        # Still answers correctly after the flush.
        assert signature(service.search(["k1"], 3)) == \
            signature(topk_search(figure1_db, ["k1"], 3))


class TestBatch:
    QUERIES = [["k1", "k2"], ["k1"], "k2 k1", ["k2"], ["k1", "k2"],
               ["k1"]]

    def expected(self, db, k=3):
        out = []
        for query in self.QUERIES:
            keywords = query.split() if isinstance(query, str) \
                else query
            out.append(signature(topk_search(db, keywords, k)))
        return out

    def test_batch_matches_per_query_loop(self, figure1_db):
        service = QueryService(figure1_db)
        batch = service.batch_search(self.QUERIES, k=3)
        assert len(batch) == len(self.QUERIES)
        assert [signature(outcome) for outcome in batch] == \
            self.expected(figure1_db)
        assert batch.stats["queries"] == len(self.QUERIES)
        assert batch.stats["distinct_term_sets"] == 3
        assert batch.stats["executor"] == "serial"
        assert batch.elapsed_ms >= 0

    def test_thread_executor_matches(self, figure1_db):
        service = QueryService(figure1_db)
        batch = service.batch_search(self.QUERIES, k=3, workers=3,
                                     executor="thread")
        assert [signature(outcome) for outcome in batch] == \
            self.expected(figure1_db)
        assert batch.stats["executor"] == "thread"
        assert batch.stats["workers"] == 3

    def test_process_executor_matches(self, figure1_db):
        service = QueryService(figure1_db)
        batch = service.batch_search(self.QUERIES, k=3, workers=2,
                                     executor="process")
        assert [signature(outcome) for outcome in batch] == \
            self.expected(figure1_db)
        assert batch.stats["executor"] == "process"
        for outcome in batch:
            assert all(result.node is not None
                       for result in outcome.results)

    def test_batch_oracle_on_random_documents(self, pdoc_factory):
        # Batch answers must equal the independent per-query loop on
        # documents the service has never seen (the oracle cross-check
        # of the issue), including under sanitize.
        for seed in (11, 29, 47):
            document = pdoc_factory(seed, max_nodes=16)
            service = QueryService(document, cache_size=2)
            batch = service.batch_search(self.QUERIES, k=4,
                                         sanitize=True)
            assert [signature(outcome) for outcome in batch] == \
                self.expected(document, k=4), seed

    def test_empty_batch(self, figure1_db):
        batch = QueryService(figure1_db).batch_search([], k=3)
        assert len(batch) == 0
        assert batch.stats["queries"] == 0

    def test_invalid_query_fails_whole_batch(self, figure1_db):
        service = QueryService(figure1_db)
        with pytest.raises(QueryError, match="duplicate"):
            service.batch_search([["k1"], ["k2", "K2"]], k=3)

    def test_invalid_executor_and_workers(self, figure1_db):
        service = QueryService(figure1_db)
        with pytest.raises(QueryError, match="unknown batch executor"):
            service.batch_search([["k1"]], executor="fiber")
        with pytest.raises(QueryError, match="workers"):
            service.batch_search([["k1"]], workers=-1)

    def test_collector_sees_cache_traffic(self, figure1_db):
        collector = MetricsCollector()
        service = QueryService(figure1_db, collector=collector)
        service.batch_search(self.QUERIES, k=3)
        counters = collector.snapshot()["counters"]
        assert counters["service.batches"] == 1
        assert counters["service.batch_queries"] == len(self.QUERIES)
        assert counters["service.cache.results.hits"] > 0
        assert counters["service.cache.match_entries.misses"] > 0


class TestChunking:
    def test_chunks_cover_and_preserve_order(self):
        order = list(range(10))
        random.Random(3).shuffle(order)
        for width in (1, 2, 3, 7, 10, 25):
            chunks = _chunked(order, width)
            assert [i for chunk in chunks for i in chunk] == order
            assert len(chunks) == min(width, len(order))

    def test_empty_order(self):
        assert _chunked([], 4) == []


class TestQueryFile:
    def test_parses_skipping_blanks_and_comments(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("k1 k2\n\n# a comment\n  k2  \n",
                        encoding="utf-8")
        assert load_query_file(str(path)) == [["k1", "k2"], ["k2"]]

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("# nothing\n\n", encoding="utf-8")
        with pytest.raises(QueryError, match="no queries"):
            load_query_file(str(path))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(QueryError, match="cannot read"):
            load_query_file(str(tmp_path / "absent.txt"))
