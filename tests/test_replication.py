"""Replicated shards: selector routing, hedging, deadline budgets.

The replication contract (docs/CORPUS.md): every replica of a shard is
a bit-identical copy of the same snapshot generation, so routing,
failover and hedging are pure latency/availability concerns — no
replica choice may ever change an answer, and a shard goes PARTIAL
only when *all* its replicas have failed.  These tests pin the policy
pieces (:mod:`repro.corpus.replication`) and the scatter behaviours
built on them, including the satellite regressions: per-shard breaker
isolation, the deadline-budget scatter fix, and composed-fault
batches.
"""

import os
import time

import pytest

from repro.corpus import (CorpusService, HedgePolicy, LatencyTracker,
                          ReplicaHealth, ReplicaSelector, build_corpus,
                          load_corpus_manifest, replica_dir_name,
                          replica_name)
from repro.corpus.builder import shard_name
from repro.corpus.replication import as_hedge_policy
from repro.corpus.service import (ACTION_DEADLINE, ACTION_SEARCHED,
                                  REASON_SHARD_FAILURE)
from repro.exceptions import QueryError, StorageError
from repro.obs.metrics import MetricsCollector
from repro.obs.spans import SpanTracer
from repro.resilience import (REASON_DEADLINE, CircuitBreaker, Fault,
                              FaultInjector)
from repro.service.service import QueryService
from tests.test_corpus import (build_tiered_docs, corpus_rows,
                               oracle_rows, random_corpus)

QUERY = ["k1", "k2"]


def make_selector(count, threshold=2, cooldown_s=60.0):
    replicas = [ReplicaHealth(replica_name(index), f"/r/{index}",
                              CircuitBreaker(threshold=threshold,
                                             cooldown_s=cooldown_s))
                for index in range(count)]
    return ReplicaSelector(replicas)


# -- latency tracker ----------------------------------------------------------


class TestLatencyTracker:
    def test_nearest_rank_percentiles(self):
        tracker = LatencyTracker()
        for value in range(1, 11):
            tracker.record(float(value))
        assert tracker.percentile(0.0) == 1.0
        assert tracker.percentile(0.5) == 6.0
        assert tracker.percentile(0.95) == 10.0
        assert tracker.percentile(1.0) == 10.0

    def test_empty_tracker_has_no_percentile(self):
        assert LatencyTracker().percentile(0.99) is None

    def test_window_is_bounded(self):
        tracker = LatencyTracker(capacity=4)
        for value in range(1, 9):
            tracker.record(float(value))
        assert len(tracker) == 4
        assert tracker.percentile(0.0) == 5.0

    def test_validation(self):
        with pytest.raises(QueryError, match="capacity"):
            LatencyTracker(capacity=0)
        with pytest.raises(QueryError, match="percentile"):
            LatencyTracker().percentile(1.5)


# -- replica selector ---------------------------------------------------------


class TestReplicaSelector:
    def test_cold_replicas_are_probed_before_warm_ones(self):
        selector = make_selector(3)
        selector.record_success(0, 50.0)
        selector.record_success(1, 5.0)
        assert selector.pick() == 2  # no EWMA yet: probe it

    def test_lowest_ewma_wins_once_all_are_warm(self):
        selector = make_selector(3)
        selector.record_success(0, 50.0)
        selector.record_success(1, 5.0)
        selector.record_success(2, 20.0)
        assert selector.pick() == 1
        assert selector.pick(exclude={1}) == 2

    def test_exhausted_exclusion_returns_none(self):
        selector = make_selector(2)
        assert selector.pick(exclude={0, 1}) is None

    def test_quarantined_replica_is_routed_around(self):
        selector = make_selector(2, threshold=2)
        selector.record_failure(0)
        selector.record_failure(0)
        assert selector.quarantined() == ["r0"]
        assert selector.pick() == 1

    def test_all_quarantined_still_probes_least_failed(self):
        # An open breaker must never by itself turn a recoverable
        # shard into a PARTIAL answer: with every replica
        # quarantined, the least-failed one is the half-open trial.
        selector = make_selector(2, threshold=1)
        selector.record_failure(0)
        selector.record_failure(0)
        selector.record_failure(1)
        assert selector.quarantined() == ["r0", "r1"]
        assert selector.pick() == 1

    def test_straggler_feeds_ewma_but_not_the_breaker(self):
        # Slow is not broken: an abandoned visit teaches routing the
        # latency without burning breaker failures.
        selector = make_selector(2)
        selector.record_straggler(0, 400.0)
        stats = selector.stats()
        assert stats[0]["ewma_ms"] == 400.0
        assert stats[0]["failures"] == 0
        assert stats[0]["breaker"]["state"] == "closed"
        assert selector.pick() == 1  # r1 is cold, probed first

    def test_success_feeds_the_shard_latency_tracker(self):
        selector = make_selector(2)
        selector.record_success(0, 12.0)
        assert len(selector.tracker) == 1

    def test_needs_at_least_one_replica(self):
        with pytest.raises(QueryError, match="at least one"):
            ReplicaSelector([])


# -- hedge policy -------------------------------------------------------------


class TestHedgePolicy:
    def test_fixed_trigger(self):
        policy = HedgePolicy(hedge_ms=25.0)
        assert policy.delay_ms(LatencyTracker()) == 25.0

    def test_percentile_waits_for_samples(self):
        policy = HedgePolicy(percentile=0.9, min_samples=3)
        tracker = LatencyTracker()
        tracker.record(10.0)
        tracker.record(20.0)
        assert policy.delay_ms(tracker) is None  # too few samples
        tracker.record(30.0)
        assert policy.delay_ms(tracker) == 30.0

    @pytest.mark.parametrize("kwargs,match", [
        ({"hedge_ms": 0}, "hedge_ms"),
        ({"percentile": 1.0}, "percentile"),
        ({"percentile": 0.5, "min_samples": 0}, "min_samples"),
        ({}, "needs"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(QueryError, match=match):
            HedgePolicy(**kwargs)

    def test_as_hedge_policy_coercions(self):
        assert as_hedge_policy(None) is None
        policy = HedgePolicy(hedge_ms=5.0)
        assert as_hedge_policy(policy) is policy
        assert as_hedge_policy(25).hedge_ms == 25.0
        with pytest.raises(QueryError, match="hedge"):
            as_hedge_policy(True)
        with pytest.raises(QueryError, match="hedge"):
            as_hedge_policy("soon")


# -- replica naming and the replicated builder --------------------------------


def _tree_bytes(root):
    """{relative path: file bytes} for every file under ``root``."""
    snapshot = {}
    for base, _, names in os.walk(root):
        for name in names:
            path = os.path.join(base, name)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, root)] = handle.read()
    return snapshot


class TestReplicaLayout:
    def test_primary_keeps_the_bare_shard_name(self):
        assert replica_dir_name("s0003", 0) == "s0003"
        assert replica_dir_name("s0003", 2) == "s0003.r2"
        assert replica_name(0) == "r0"

    def test_builder_writes_bit_identical_replicas(self, tmp_path):
        directory = str(tmp_path / "corpus")
        manifest = build_corpus(random_corpus(7), directory, shards=2,
                                replicas=2)
        assert manifest.replicas == 2
        assert load_corpus_manifest(directory).replicas == 2
        for position in range(manifest.shard_count):
            primary, mirror = manifest.replica_dirs(position)
            assert os.path.basename(mirror) == \
                os.path.basename(primary) + ".r1"
            assert _tree_bytes(primary) == _tree_bytes(mirror)

    def test_builder_rejects_nonpositive_replicas(self, tmp_path):
        with pytest.raises(QueryError, match="replicas"):
            build_corpus(random_corpus(7), str(tmp_path / "c"),
                         shards=2, replicas=0)


# -- failover in the scatter --------------------------------------------------


@pytest.fixture()
def replicated(tmp_path):
    documents = random_corpus(13, count=4, max_nodes=18)
    directory = str(tmp_path / "corpus2")
    build_corpus(documents, directory, shards=2, replicas=2)
    return {"documents": documents, "directory": directory}


class TestReplicaFailover:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_dead_primaries_are_invisible(self, replicated, executor):
        # r0 of *every* shard rejects every visit; failover must
        # answer bit-identically from r1 with zero PARTIAL outcomes —
        # the PR's acceptance property.
        collector = MetricsCollector()
        faults = FaultInjector(
            [Fault(kind="replica_down", target="r0")], seed=3)
        service = CorpusService(replicated["directory"],
                                collector=collector, faults=faults)
        outcome = service.search(QUERY, k=5, executor=executor,
                                 workers=2)
        assert not outcome.partial
        assert corpus_rows(outcome) == oracle_rows(
            replicated["documents"], QUERY, 5)
        block = outcome.stats["corpus"]
        assert block["failovers"] >= 1
        counters = collector.snapshot()["counters"]
        assert counters["corpus.replica.failures"] >= 1

    def test_all_replicas_down_is_honestly_partial(self, replicated):
        manifest = load_corpus_manifest(replicated["directory"])
        victim = shard_name(0)
        faults = FaultInjector(
            [Fault(kind="replica_down", target=victim)], seed=3)
        service = CorpusService(replicated["directory"], faults=faults)
        outcome = service.search(QUERY, k=5)
        assert outcome.partial
        assert outcome.termination_reason == REASON_SHARD_FAILURE
        block = outcome.stats["corpus"]
        assert block["failed"] == 1
        assert block[ACTION_SEARCHED] == manifest.shard_count - 1

    def test_failing_shard_leaves_other_breakers_closed(
            self, replicated):
        # Satellite regression: breaker state is per shard per
        # replica — one persistently dead shard must not poison the
        # routing of shards that are perfectly healthy.
        manifest = load_corpus_manifest(replicated["directory"])
        victim = shard_name(0)
        faults = FaultInjector(
            [Fault(kind="replica_down", target=victim)], seed=3)
        service = CorpusService(replicated["directory"], faults=faults,
                                replica_breaker_threshold=2,
                                replica_cooldown_s=300.0)
        for _ in range(4):
            service.search(QUERY, k=5)
        stats = service.replica_stats()
        for replica in stats[victim]:
            assert replica["failures"] >= 2
            assert replica["breaker"]["state"] == "open"
        for shard, replicas in stats.items():
            if shard == victim:
                continue
            for replica in replicas:
                assert replica["failures"] == 0
                assert replica["breaker"]["state"] == "closed"
        health = service.health_snapshot()
        quarantined = {shard["shard"]: shard.get("quarantined")
                       for shard in health["shards"]}
        assert quarantined[victim] == ["r0", "r1"]


# -- hedged scatter -----------------------------------------------------------


class TestHedging:
    def test_hedge_races_a_straggling_primary_and_stays_exact(
            self, replicated):
        collector = MetricsCollector()
        faults = FaultInjector(
            [Fault(kind="slow_replica", target="r0", delay_ms=400.0)],
            seed=3)
        service = CorpusService(replicated["directory"],
                                collector=collector, faults=faults,
                                hedge=HedgePolicy(hedge_ms=20.0),
                                executor="thread")
        tracer = SpanTracer(trace_id="hedge-test")
        outcome = service.search(QUERY, k=5, workers=2, tracer=tracer)
        assert not outcome.partial
        assert corpus_rows(outcome) == oracle_rows(
            replicated["documents"], QUERY, 5)
        block = outcome.stats["corpus"]
        assert block["hedges"]["fired"] >= 1
        counters = collector.snapshot()["counters"]
        fired = counters["corpus.hedge.fired"]
        won = counters.get("corpus.hedge.won", 0)
        lost = counters.get("corpus.hedge.lost", 0)
        assert won + lost <= fired
        assert any(span.name == "corpus.hedge"
                   for span in tracer.finished)
        # The scatter must not wait out the 400ms stragglers it
        # hedged over.
        assert outcome.stats["corpus"].get("degraded", 0) == 0

    def test_hedge_number_shorthand_and_off_by_default(
            self, replicated):
        service = CorpusService(replicated["directory"], hedge=30)
        assert service.search(QUERY, k=3).partial is False
        with pytest.raises(QueryError, match="hedge"):
            CorpusService(replicated["directory"], hedge=True)


# -- deadline budgets through the scatter -------------------------------------


class TestDeadlineBudget:
    def test_exhausted_budget_skips_shards_honestly(self, replicated):
        service = CorpusService(replicated["directory"])
        outcome = service.search(QUERY, k=5, deadline=1e-6)
        assert outcome.partial
        assert outcome.termination_reason == REASON_DEADLINE
        block = outcome.stats["corpus"]
        assert block[ACTION_DEADLINE] >= 1

    def test_two_slow_shards_cannot_overshoot_the_budget(
            self, tmp_path):
        # Satellite regression for the scatter deadline bug: each
        # visit must draw from the *remaining* budget, not re-spend
        # the caller's full deadline_ms.  Every shard here straggles
        # (5s each, far past the 250ms budget); with the old
        # behaviour the serial scatter would run shards * 5s.
        documents = build_tiered_docs()
        directory = str(tmp_path / "slow")
        build_corpus(documents, directory, shards=3)
        faults = FaultInjector(
            [Fault(kind="slow_replica", delay_ms=5000.0)], seed=3)
        service = CorpusService(directory, faults=faults)
        started = time.monotonic()
        outcome = service.search(QUERY, k=2, deadline=250.0)
        wall_s = time.monotonic() - started
        assert wall_s <= 0.25 + 0.75  # budget + epsilon
        assert outcome.partial
        assert outcome.termination_reason == REASON_DEADLINE
        assert outcome.stats["corpus"][ACTION_DEADLINE] >= 1

    def test_batch_search_totals_count_deadline_skips(self, tmp_path):
        documents = build_tiered_docs()
        directory = str(tmp_path / "batch")
        build_corpus(documents, directory, shards=2)
        faults = FaultInjector(
            [Fault(kind="slow_replica", delay_ms=5000.0)], seed=3)
        service = CorpusService(directory, faults=faults)
        batch = service.batch_search([QUERY, ["k1"]], k=2,
                                     executor="serial",
                                     deadline_ms=100.0)
        assert len(batch) == 2
        assert batch.stats["corpus"][ACTION_DEADLINE] >= 1


# -- composed faults ----------------------------------------------------------


class TestComposedFaults:
    def test_worker_crash_reload_corrupt_and_deadline_in_one_batch(
            self, figure1_doc):
        # Satellite: the three fault families compose — a crashing
        # worker chunk, a rejected hot reload, and a per-query
        # deadline expiry, all against one service — and every query
        # still gets an explicit outcome; nothing escapes
        # batch_search.
        queries = [["k1"], ["k2"], ["k1", "k2"], ["k1"]]
        service = QueryService(figure1_doc,
                               collector=MetricsCollector())
        faults = FaultInjector(
            [Fault(kind="worker_crash", times=1, delay_ms=100.0),
             Fault(kind="slow_query", terms=("k1", "k2"),
                   delay_ms=400.0),
             Fault(kind="reload_corrupt", times=1)], seed=7)
        batch = service.batch_search(queries, workers=2,
                                     executor="process", faults=faults,
                                     max_retries=2, deadline_ms=200.0)
        assert len(batch) == len(queries)
        reasons = [outcome.termination_reason for outcome in batch]
        assert all(reason in ("complete", "deadline", "error")
                   for reason in reasons)
        res = batch.stats["resilience"]
        assert res["worker_crashes"] >= 1
        assert res["deadline_expired"] >= 1

        with pytest.raises(StorageError, match="reload rejected"):
            service.reload(faults=faults)
        assert service.storage_stats()["reloads"]["rejected"] == 1
        # The old generation keeps serving after the rejected reload.
        assert service.search(["k1"], k=3).results

    def test_corpus_batch_survives_replica_and_deadline_chaos(
            self, tmp_path):
        documents = random_corpus(17, count=4, max_nodes=18)
        directory = str(tmp_path / "composed")
        build_corpus(documents, directory, shards=2, replicas=2)
        faults = FaultInjector(
            [Fault(kind="replica_down", target="r0", times=3),
             Fault(kind="slow_replica", target="r1", rate=0.5,
                   delay_ms=300.0),
             Fault(kind="torn_replica", rate=0.2)], seed=11)
        service = CorpusService(directory, faults=faults)
        batch = service.batch_search(
            [QUERY, ["k1"], ["k2"], QUERY], k=3, executor="thread",
            workers=2, deadline_ms=250.0)
        assert len(batch) == 4
        for outcome in batch:
            assert outcome.termination_reason in (
                None, "complete", REASON_DEADLINE,
                REASON_SHARD_FAILURE)
            if outcome.partial:
                assert outcome.termination_reason in (
                    REASON_DEADLINE, REASON_SHARD_FAILURE)
