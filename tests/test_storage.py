"""Unit tests for database persistence."""

import json
import os

import pytest

from repro import Database, load_database, save_database
from repro.exceptions import StorageError
from repro.index.storage import resolve_snapshot


@pytest.fixture
def database(figure1_doc):
    return Database.from_document(figure1_doc)


def data_dir(directory) -> str:
    """The active snapshot directory holding the data files."""
    return resolve_snapshot(directory)[0]


class TestSaveLoad:
    def test_round_trip(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        loaded = load_database(directory)
        assert len(loaded.document) == len(database.document)
        assert loaded.index.vocabulary() == database.index.vocabulary()
        for term in database.index.vocabulary():
            assert list(loaded.index.postings(term)) == \
                list(database.index.postings(term))

    def test_round_trip_preserves_search_results(self, database, tmp_path):
        from repro import topk_search
        directory = tmp_path / "db"
        save_database(database, directory)
        loaded = load_database(directory)
        original = topk_search(database, ["k1", "k2"], 5, "prstack")
        reloaded = topk_search(loaded, ["k1", "k2"], 5, "prstack")
        assert [(str(r.code), round(r.probability, 12)) for r in original] \
            == [(str(r.code), round(r.probability, 12)) for r in reloaded]

    def test_creates_directory(self, database, tmp_path):
        directory = tmp_path / "nested" / "db"
        save_database(database, directory)
        assert (directory / "CURRENT").exists()
        assert os.path.exists(os.path.join(data_dir(directory),
                                           "meta.json"))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path / "absent")

    def test_version_mismatch(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        meta_path = os.path.join(data_dir(directory), "meta.json")
        meta = json.loads(open(meta_path).read())
        meta["version"] = 999
        with open(meta_path, "w") as handle:
            handle.write(json.dumps(meta))
        with pytest.raises(StorageError, match="version"):
            load_database(directory, verify=False)

    def test_node_count_mismatch(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        meta_path = os.path.join(data_dir(directory), "meta.json")
        meta = json.loads(open(meta_path).read())
        meta["nodes"] += 1
        with open(meta_path, "w") as handle:
            handle.write(json.dumps(meta))
        with pytest.raises(StorageError, match="nodes"):
            load_database(directory, verify=False)

    def test_corrupt_postings_line(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        postings_path = os.path.join(data_dir(directory),
                                     "postings.jsonl")
        with open(postings_path, "a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
        with pytest.raises(StorageError, match="bad record"):
            load_database(directory, verify=False)

    def test_term_count_mismatch(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        postings_path = os.path.join(data_dir(directory),
                                     "postings.jsonl")
        with open(postings_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": "extra", "ids": [0]}) + "\n")
        with pytest.raises(StorageError, match="terms"):
            load_database(directory, verify=False)


class TestPersistenceHardening:
    def test_non_ascii_terms_round_trip(self, tmp_path):
        from repro import DocumentBuilder
        builder = DocumentBuilder("menu")
        builder.leaf("dish", text="Café Crème")
        builder.leaf("dish", text="Smørrebrød")
        database = Database.from_document(builder.build())
        directory = tmp_path / "db"
        save_database(database, directory)
        raw_path = os.path.join(data_dir(directory), "postings.jsonl")
        raw = open(raw_path, encoding="utf-8").read()
        assert "café" in raw and "\\u" not in raw
        loaded = load_database(directory)
        assert list(loaded.index.postings("café")) == \
            list(database.index.postings("café"))
        assert list(loaded.index.postings("smørrebrød")) == \
            list(database.index.postings("smørrebrød"))

    def test_save_rejects_empty_posting_list(self, database, tmp_path):
        database.index.raw_postings()["ghost"] = \
            database.index.raw_postings()["k1"][:0]
        with pytest.raises(StorageError, match="'ghost'"):
            save_database(database, tmp_path / "db")

    def test_load_rejects_empty_posting_list(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        postings_path = os.path.join(data_dir(directory),
                                     "postings.jsonl")
        with open(postings_path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[0] = json.dumps({"t": "ghost", "ids": []}) + "\n"
        with open(postings_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(StorageError,
                           match=r"postings\.jsonl:1.*'ghost'.*empty"):
            load_database(directory, verify=False)

    def test_load_rejects_non_string_term(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        postings_path = os.path.join(data_dir(directory),
                                     "postings.jsonl")
        with open(postings_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": 7, "ids": [0]}) + "\n")
        with pytest.raises(StorageError, match="not a string"):
            load_database(directory, verify=False)

    def test_load_rejects_duplicate_term(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        postings_path = os.path.join(data_dir(directory),
                                     "postings.jsonl")
        with open(postings_path, encoding="utf-8") as handle:
            first = handle.readline()
        with open(postings_path, "a", encoding="utf-8") as handle:
            handle.write(first)
        with pytest.raises(StorageError, match="appears twice"):
            load_database(directory, verify=False)

    def test_verify_catches_every_tampered_file(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        for name in ("document.pxml", "postings.jsonl", "meta.json"):
            path = os.path.join(data_dir(directory), name)
            original = open(path, "rb").read()
            with open(path, "ab") as handle:
                handle.write(b" ")
            with pytest.raises(StorageError, match="verification"):
                load_database(directory)
            with open(path, "wb") as handle:
                handle.write(original)
        load_database(directory)  # pristine again
