"""Unit tests for database persistence."""

import json
import os

import pytest

from repro import Database, load_database, save_database
from repro.exceptions import StorageError


@pytest.fixture
def database(figure1_doc):
    return Database.from_document(figure1_doc)


class TestSaveLoad:
    def test_round_trip(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        loaded = load_database(directory)
        assert len(loaded.document) == len(database.document)
        assert loaded.index.vocabulary() == database.index.vocabulary()
        for term in database.index.vocabulary():
            assert list(loaded.index.postings(term)) == \
                list(database.index.postings(term))

    def test_round_trip_preserves_search_results(self, database, tmp_path):
        from repro import topk_search
        directory = tmp_path / "db"
        save_database(database, directory)
        loaded = load_database(directory)
        original = topk_search(database, ["k1", "k2"], 5, "prstack")
        reloaded = topk_search(loaded, ["k1", "k2"], 5, "prstack")
        assert [(str(r.code), round(r.probability, 12)) for r in original] \
            == [(str(r.code), round(r.probability, 12)) for r in reloaded]

    def test_creates_directory(self, database, tmp_path):
        directory = tmp_path / "nested" / "db"
        save_database(database, directory)
        assert (directory / "meta.json").exists()

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path / "absent")

    def test_version_mismatch(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="version"):
            load_database(directory)

    def test_node_count_mismatch(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["nodes"] += 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="nodes"):
            load_database(directory)

    def test_corrupt_postings_line(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        postings_path = os.path.join(directory, "postings.jsonl")
        with open(postings_path, "a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
        with pytest.raises(StorageError, match="bad record"):
            load_database(directory)

    def test_term_count_mismatch(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        postings_path = os.path.join(directory, "postings.jsonl")
        with open(postings_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": "extra", "ids": [0]}) + "\n")
        with pytest.raises(StorageError, match="terms"):
            load_database(directory)
