"""Runtime concurrency coverage: witness unit tests, thread-safety
regression tests for the races R008 found (and this PR fixed), signal
registration guards, static/runtime lock-order consistency, and the
full stress harness under the instrumented-lock witness."""

from __future__ import annotations

import signal
import sys
import threading

import pytest

from repro.analysis.concurrency import (DEFAULT_LOCK_ORDER,
                                        ConcurrencyWitnessError,
                                        InstrumentedLock, LockWitness,
                                        NULL_WITNESS, derive_lock_order,
                                        wrap_lock)
from repro.analysis.concurrency.stress import run_stress
from repro.index.cache import LRUCache
from repro.obs.metrics import MetricsCollector
from repro.obs.recorder import FlightRecorder
from repro.resilience.retry import CircuitBreaker
from repro.service.signals import on_main_thread, safe_signal


# -- LockWitness / InstrumentedLock units ---------------------------------


class TestLockWitness:
    def test_nested_acquire_records_order_edge(self):
        witness = LockWitness(order=())
        outer = InstrumentedLock("A._lock", witness)
        inner = InstrumentedLock("B._lock", witness)
        with outer:
            with inner:
                assert witness.held() == ("A._lock", "B._lock")
        assert witness.held() == ()
        assert ("A._lock", "B._lock") in witness.order_edges()

    def test_order_inversion_raises_in_strict_mode(self):
        witness = LockWitness(order=[("A._lock", "B._lock")])
        a = InstrumentedLock("A._lock", witness)
        b = InstrumentedLock("B._lock", witness)
        with b:
            with pytest.raises(ConcurrencyWitnessError,
                               match="order"):
                a.acquire()

    def test_observed_edge_closes_cycles_too(self):
        witness = LockWitness(order=())
        a = InstrumentedLock("A._lock", witness)
        b = InstrumentedLock("B._lock", witness)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(ConcurrencyWitnessError):
                a.acquire()

    def test_non_strict_accumulates_instead_of_raising(self):
        witness = LockWitness(order=[("A._lock", "B._lock")],
                              strict=False)
        a = InstrumentedLock("A._lock", witness)
        b = InstrumentedLock("B._lock", witness)
        with b:
            with a:
                pass
        assert len(witness.violations) == 1

    def test_nonreentrant_reacquire_is_fatal_even_when_lenient(self):
        # The real acquire would self-deadlock (the SIGUSR2 bug this
        # PR fixed in FlightRecorder), so the witness raises *before*
        # acquiring, strict or not.
        witness = LockWitness(order=(), strict=False)
        lock = InstrumentedLock("A._lock", witness)
        with lock:
            with pytest.raises(ConcurrencyWitnessError,
                               match="re-acqui"):
                lock.acquire()

    def test_rlock_reentry_is_allowed(self):
        witness = LockWitness(order=())
        lock = InstrumentedLock("A._lock", witness,
                                inner=threading.RLock())
        with lock:
            with lock:
                assert witness.holds("A._lock")
        assert witness.held() == ()

    def test_assert_holding(self):
        witness = LockWitness(order=())
        lock = InstrumentedLock("C._lock:x", witness)
        with pytest.raises(ConcurrencyWitnessError, match="without"):
            witness.assert_holding("C._lock:x", "C._data")
        with lock:
            witness.assert_holding("C._lock:x", "C._data")

    def test_instance_suffix_shares_one_order_role(self):
        # Two LRUCache instances must not fabricate a cache->cache
        # order edge between distinct roles.
        witness = LockWitness(order=())
        first = InstrumentedLock("LRUCache._lock:a", witness)
        second = InstrumentedLock("LRUCache._lock:b", witness)
        with first:
            with second:
                pass
        assert ("LRUCache._lock", "LRUCache._lock") \
            not in witness.order_edges()

    def test_wrap_lock_is_idempotent(self):
        witness = LockWitness(order=())
        recorder = FlightRecorder(capacity=8)
        wrapped = wrap_lock(recorder, "_lock",
                            "FlightRecorder._lock", witness)
        again = wrap_lock(recorder, "_lock",
                          "FlightRecorder._lock", witness)
        assert wrapped is again
        recorder.record("test", "ping")
        assert witness.acquisitions.get("FlightRecorder._lock")

    def test_null_witness_is_disabled(self):
        assert not NULL_WITNESS.enabled
        NULL_WITNESS.before_acquire("X._lock")
        NULL_WITNESS.assert_holding("X._lock")  # never raises


# -- static order derivation vs the declared runtime order ----------------


def test_derived_lock_order_is_declared():
    """Every statically-derivable nesting edge in src/repro must be a
    declared DEFAULT_LOCK_ORDER edge — the static analyzer and the
    runtime witness may never disagree about the discipline."""
    derived = derive_lock_order(["src/repro"])
    declared = set(DEFAULT_LOCK_ORDER)
    missing = [edge for edge in derived if edge not in declared]
    assert not missing, (
        f"nesting edges found in source but absent from "
        f"DEFAULT_LOCK_ORDER: {missing}")


# -- regression tests for the races the static pass found -----------------


def _hammer(n_threads, target):
    threads = [threading.Thread(target=target, args=(i,))
               for i in range(n_threads)]
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)  # force frequent preemption
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    finally:
        sys.setswitchinterval(old)
    assert not any(t.is_alive() for t in threads)


class TestSharedStateRegressions:
    def test_metrics_collector_count_is_atomic(self):
        # Pre-fix, count() did d[k] = d.get(k, 0) + v outside any lock
        # while merge() wrote under one — lost updates under load.
        collector = MetricsCollector()
        per_thread, n_threads = 400, 8

        def work(_):
            for _ in range(per_thread):
                collector.count("race.hits")
                collector.observe("race.size", 1.0)

        _hammer(n_threads, work)
        assert collector.counter("race.hits") == per_thread * n_threads
        snapshot = collector.snapshot()
        assert snapshot["counters"]["race.hits"] == \
            per_thread * n_threads

    def test_lru_cache_counters_stay_consistent(self):
        # Pre-fix, __len__/stats read _data and the hit/miss counters
        # without the lock; hits+misses must equal total gets exactly.
        cache = LRUCache("race", capacity=32)
        per_thread, n_threads = 300, 6

        def work(wid):
            for i in range(per_thread):
                key = (wid * per_thread + i) % 48
                if cache.get(key) is None:
                    cache.put(key, key)
                len(cache)
                cache.stats()

        _hammer(n_threads, work)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == \
            per_thread * n_threads
        assert len(cache) <= 32

    def test_circuit_breaker_failures_count_exactly(self):
        breaker = CircuitBreaker(threshold=10_000, cooldown_s=0.0)
        per_thread, n_threads = 250, 8

        def work(_):
            for _ in range(per_thread):
                breaker.record_failure()
                breaker.summary()

        _hammer(n_threads, work)
        assert breaker.failures == per_thread * n_threads

    def test_flight_recorder_dump_reentrant_from_handler_shape(self):
        # The R011 worked example: dumps/record share an RLock so a
        # handler interrupting record() can still dump.  Simulate the
        # re-entry directly.
        recorder = FlightRecorder(capacity=8)
        with recorder._lock:
            assert recorder.dumps == 0  # would deadlock on plain Lock


# -- safe_signal ----------------------------------------------------------


@pytest.mark.skipif(not hasattr(signal, "SIGUSR2"),
                    reason="platform without SIGUSR2")
class TestSafeSignal:
    def test_registers_and_restores_on_main_thread(self):
        assert on_main_thread()
        seen = []
        previous = signal.getsignal(signal.SIGUSR2)
        restore = safe_signal(signal.SIGUSR2,
                              lambda s, f: seen.append(s), "test hook")
        try:
            signal.raise_signal(signal.SIGUSR2)
            assert seen == [signal.SIGUSR2]
        finally:
            restore()
        assert signal.getsignal(signal.SIGUSR2) is previous

    def test_off_main_thread_warns_and_noops(self, caplog):
        previous = signal.getsignal(signal.SIGUSR2)
        results = []

        def off_main():
            assert not on_main_thread()
            results.append(safe_signal(
                signal.SIGUSR2, lambda s, f: None, "worker hook"))

        with caplog.at_level("WARNING", logger="repro.service.signals"):
            worker = threading.Thread(target=off_main)
            worker.start()
            worker.join(timeout=30)
        assert len(results) == 1
        results[0]()  # the no-op restore must not raise
        assert signal.getsignal(signal.SIGUSR2) is previous
        assert any("off the main thread" in record.message
                   for record in caplog.records)


# -- the stress harness ---------------------------------------------------


@pytest.fixture
def stress_summary(fragment_db, tmp_path):
    return run_stress(fragment_db, threads=4, iterations=16,
                      seed=673, dump_dir=str(tmp_path))


class TestStressHarness:
    def test_service_survives_the_storm(self, stress_summary):
        assert stress_summary["errors"] == []
        assert stress_summary["witness"]["violations"] == []
        assert stress_summary["ok"] is True

    def test_storm_actually_exercised_everything(self, stress_summary):
        ops = stress_summary["ops"]
        assert ops["searches"] > 0
        assert ops["batches"] > 0
        assert ops["reloads"] > 0
        if hasattr(signal, "SIGUSR2"):
            assert ops["dumps"] == 2
        assert stress_summary["witness"]["total_acquisitions"] > 0

    def test_witness_saw_the_declared_nesting(self, stress_summary):
        # Reloads bump stats under the reload lock: that declared edge
        # must have been observed live at least once.
        edges = stress_summary["witness"]["order_edges"]
        assert "QueryService._reload_lock -> " \
               "QueryService._stats_lock" in edges

    def test_stress_runs_without_dump_dir(self, fragment_db):
        summary = run_stress(fragment_db, threads=2, iterations=6,
                             seed=11, dump_dir=None)
        assert summary["ok"] is True
        assert summary["ops"]["dumps"] == 0
