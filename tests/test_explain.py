"""Unit tests for the result explainer."""

import pytest

from repro import DeweyCode, explain_result
from repro.exceptions import QueryError


class TestExplainResult:
    def test_paper_example_6_decomposition(self, fragment_db):
        """C1: Pr(path) = 0.15, Pr_local = 0.063, Pr_global = 0.00945,
        and the Example 5 distribution table."""
        code = DeweyCode.parse("1.M1.I1.1")
        explanation = explain_result(fragment_db.index, ["k1", "k2"],
                                     code)
        assert explanation.node.label == "C1"
        assert explanation.path_probability == pytest.approx(0.15)
        assert explanation.local_slca_probability == \
            pytest.approx(0.063)
        assert explanation.global_slca_probability == \
            pytest.approx(0.00945)
        distribution = explanation.distribution
        assert distribution[("k1",)] == pytest.approx(0.507)
        assert distribution[("k2",)] == pytest.approx(0.327)
        assert distribution[()] == pytest.approx(0.103)
        assert ("k1", "k2") not in distribution or \
            distribution[("k1", "k2")] == 0.0

    def test_equation_2_consistency(self, figure1_db):
        """Pr_global = Pr(path) * Pr_local for every answer."""
        from repro import prstack_search
        outcome = prstack_search(figure1_db.index, ["k1", "k2"], k=10)
        for result in outcome:
            explanation = explain_result(figure1_db.index,
                                         ["k1", "k2"], result.code)
            assert explanation.global_slca_probability == \
                pytest.approx(result.probability)
            assert explanation.global_slca_probability == pytest.approx(
                explanation.path_probability
                * explanation.local_slca_probability)

    def test_non_answer_node_explained_as_zero(self, fragment_db):
        root = DeweyCode.parse("1")
        explanation = explain_result(fragment_db.index, ["k1", "k2"],
                                     root)
        assert explanation.global_slca_probability < \
            explain_result(fragment_db.index, ["k1", "k2"],
                           DeweyCode.parse("1.M1.I1.1")
                           ).global_slca_probability + 1

    def test_distributional_node_rejected(self, fragment_db):
        with pytest.raises(QueryError, match="ordinary"):
            explain_result(fragment_db.index, ["k1"],
                           DeweyCode.parse("1.M1"))

    def test_unknown_code_rejected(self, fragment_db):
        with pytest.raises(QueryError, match="no node"):
            explain_result(fragment_db.index, ["k1"],
                           DeweyCode.parse("1.9.9"))

    def test_lines_render(self, fragment_db):
        explanation = explain_result(fragment_db.index, ["k1", "k2"],
                                     DeweyCode.parse("1.M1.I1.1"))
        text = "\n".join(explanation.lines())
        assert "Equation 2" in text
        assert "C1" in text
        assert "0.00945" in text
