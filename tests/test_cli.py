"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def pxml_file(tmp_path, figure1_doc):
    from repro import write_pxml_file
    path = tmp_path / "doc.pxml"
    write_pxml_file(figure1_doc, path)
    return str(path)


class TestCli:
    def test_generate_and_stats(self, tmp_path, capsys):
        output = str(tmp_path / "mini.pxml")
        assert main(["generate", "dblp", "--publications", "50",
                     "-o", output]) == 0
        assert main(["stats", output]) == 0
        captured = capsys.readouterr().out
        assert "#IND" in captured and "height=" in captured

    def test_index_then_search(self, tmp_path, pxml_file, capsys):
        database_dir = str(tmp_path / "db")
        assert main(["index", pxml_file, database_dir]) == 0
        assert main(["search", database_dir, "k1", "k2",
                     "-k", "3"]) == 0
        captured = capsys.readouterr().out
        assert "answer(s)" in captured
        assert "Pr=" in captured

    def test_search_directly_on_pxml(self, pxml_file, capsys):
        assert main(["search", pxml_file, "k1",
                     "--algorithm", "prstack"]) == 0
        assert "prstack" in capsys.readouterr().out

    def test_explain(self, pxml_file, capsys):
        assert main(["explain", pxml_file, "k1", "k2",
                     "--code", "1.M1.I2.1"]) == 0
        captured = capsys.readouterr().out
        assert "Equation 2" in captured

    def test_twig(self, pxml_file, capsys):
        assert main(["twig", pxml_file, "C1"]) == 0
        captured = capsys.readouterr().out
        assert "binding(s)" in captured
        assert "P(matches anywhere)" in captured

    def test_worlds(self, tmp_path, fragment_doc, capsys):
        from repro import write_pxml_file
        path = tmp_path / "frag.pxml"
        write_pxml_file(fragment_doc, path)
        assert main(["worlds", str(path)]) == 0
        captured = capsys.readouterr().out
        assert "7 distinct possible worlds" in captured

    def test_search_profile(self, pxml_file, capsys):
        assert main(["search", pxml_file, "k1", "k2",
                     "--profile"]) == 0
        captured = capsys.readouterr().out
        assert "profile" in captured
        assert "counters" in captured
        assert "engine.frames_pushed" in captured

    def test_search_metrics_json(self, tmp_path, pxml_file, capsys):
        import json
        from repro.obs.report import validate_report
        path = tmp_path / "metrics.json"
        assert main(["search", pxml_file, "k1", "k2",
                     "--metrics-json", str(path)]) == 0
        assert "metrics report written" in capsys.readouterr().out
        report = json.loads(path.read_text())
        validate_report(report)
        assert report["query"]["keywords"] == ["k1", "k2"]
        assert report["metrics"]["counters"]

    def test_verbose_flag_enables_debug_logging(self, pxml_file, capsys):
        import logging
        assert main(["-v", "search", pxml_file, "k1"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        assert main(["search", pxml_file, "k1"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_error_reported_cleanly(self, pxml_file, capsys):
        assert main(["explain", pxml_file, "k1",
                     "--code", "1.9.9"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_search_sanitize_flag(self, pxml_file, capsys):
        assert main(["search", pxml_file, "k1", "k2",
                     "--sanitize"]) == 0
        captured = capsys.readouterr().out
        assert "sanitizer:" in captured
        assert "0 violations" in captured

    def test_check_validates_document(self, pxml_file, capsys):
        assert main(["check", pxml_file]) == 0
        assert "document ok" in capsys.readouterr().out

    def test_check_crosschecks_algorithms(self, pxml_file, capsys):
        assert main(["check", pxml_file, "k1", "k2",
                     "--sanitize"]) == 0
        captured = capsys.readouterr().out
        assert "PrStack and EagerTopK agree" in captured
        assert "sanitizer ran" in captured

    def test_module_invocation(self, pxml_file):
        import subprocess
        import sys
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "search", pxml_file, "k1"],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0
        assert "answer(s)" in completed.stdout


class TestBatchCommand:
    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("k1 k2\n# warm replay below\nk1 k2\nk1\n",
                        encoding="utf-8")
        return str(path)

    def test_batch_over_database(self, tmp_path, pxml_file, query_file,
                                 capsys):
        database_dir = str(tmp_path / "db")
        assert main(["index", pxml_file, database_dir]) == 0
        capsys.readouterr()
        assert main(["batch", database_dir, query_file, "-k", "3",
                     "--cache-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "3 queries (2 distinct term sets)" in out
        assert "cache results: 1 hits" in out

    def test_batch_with_workers_and_metrics(self, tmp_path, pxml_file,
                                            query_file, capsys):
        import json as json_module
        from repro.obs import validate_report
        metrics = str(tmp_path / "batch.json")
        assert main(["batch", pxml_file, query_file, "--workers", "2",
                     "--executor", "thread", "--sanitize",
                     "--metrics-json", metrics]) == 0
        assert "metrics report written" in capsys.readouterr().out
        with open(metrics, encoding="utf-8") as handle:
            report = validate_report(json_module.load(handle))
        assert report["stats"]["queries"] == 3
        assert report["query"]["keywords"] == ["k1 k2", "k1 k2", "k1"]

    def test_batch_rejects_empty_query_file(self, tmp_path, pxml_file,
                                            capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n", encoding="utf-8")
        assert main(["batch", pxml_file, str(path)]) == 1
        assert "no queries" in capsys.readouterr().err

    def test_batch_rejects_bad_query_line(self, tmp_path, pxml_file,
                                          capsys):
        path = tmp_path / "bad.txt"
        path.write_text("k1 K1\n", encoding="utf-8")
        assert main(["batch", pxml_file, str(path)]) == 1
        assert "duplicate query keyword" in capsys.readouterr().err

    def test_batch_reports_storage_generation(self, tmp_path,
                                              pxml_file, query_file,
                                              capsys):
        database_dir = str(tmp_path / "db")
        assert main(["index", pxml_file, database_dir]) == 0
        capsys.readouterr()
        assert main(["batch", database_dir, query_file]) == 0
        out = capsys.readouterr().out
        assert "storage: generation g00000001 (epoch 1)" in out

    def test_batch_reload_on_rejects_pxml_source(self, pxml_file,
                                                 query_file, capsys):
        assert main(["batch", pxml_file, query_file,
                     "--reload-on", "HUP"]) == 1
        assert "database directory" in capsys.readouterr().err

    def test_batch_reload_on_hup_swaps_generation(self, tmp_path,
                                                  pxml_file, capsys,
                                                  monkeypatch):
        """Raise a real SIGHUP while the batch runs in-process: the
        handler must hot-reload to the newest generation and the batch
        must finish with exit 0.  The signal is raised from the main
        thread once the handler is armed and the service is loaded, so
        the test is deterministic (a timer could fire while the default
        disposition is active and kill the test process)."""
        import signal

        import repro.cli as cli_module
        if not hasattr(signal, "SIGHUP"):  # pragma: no cover
            pytest.skip("no SIGHUP on this platform")
        database_dir = str(tmp_path / "db")
        assert main(["index", pxml_file, database_dir]) == 0
        queries = tmp_path / "many.txt"
        queries.write_text("k1 k2\n" * 10, encoding="utf-8")
        capsys.readouterr()

        real_run_batch = cli_module._run_batch

        def signal_then_run(options, batch_queries, service, collector,
                            faults, *observability):
            # The service has loaded generation 1; commit generation 2
            # now so the reload is a genuine hot swap.
            assert main(["snapshot", database_dir]) == 0
            signal.raise_signal(signal.SIGHUP)
            return real_run_batch(options, batch_queries, service,
                                  collector, faults, *observability)

        monkeypatch.setattr(cli_module, "_run_batch", signal_then_run)
        code = main(["batch", database_dir, str(queries),
                     "--reload-on", "HUP"])
        assert code == 0
        captured = capsys.readouterr()
        assert "reloaded: now serving generation g00000002" \
            in captured.err
        assert "storage: generation g00000002 (epoch 2)" \
            in captured.out
        assert "reloads 1/1 ok" in captured.out


class TestSearchValidation:
    def test_invalid_k_reported(self, pxml_file, capsys):
        assert main(["search", pxml_file, "k1", "-k", "0"]) == 1
        assert "k must be positive" in capsys.readouterr().err

    def test_duplicate_keyword_reported(self, pxml_file, capsys):
        assert main(["search", pxml_file, "k1", "K1"]) == 1
        assert "duplicate query keyword" in capsys.readouterr().err

    def test_unindexable_keyword_reported(self, pxml_file, capsys):
        assert main(["search", pxml_file, "..."]) == 1
        assert "no indexable terms" in capsys.readouterr().err


class TestCorpusCommand:
    @pytest.fixture
    def corpus_sources(self, tmp_path):
        from repro import DocumentBuilder, write_pxml_file
        paths = []
        for name, prob in (("strong", 1.0), ("weak1", 0.05),
                           ("weak2", 0.05)):
            builder = DocumentBuilder(name)
            if prob >= 1.0:
                builder.leaf("a", text="k1")
                builder.leaf("b", text="k2")
            else:
                with builder.ind(prob=prob):
                    builder.leaf("a", text="k1")
                    builder.leaf("b", text="k2")
            path = tmp_path / f"{name}.pxml"
            write_pxml_file(builder.build(), path)
            paths.append(str(path))
        return paths

    def test_build_search_fsck_roundtrip(self, tmp_path,
                                         corpus_sources, capsys):
        corpus_dir = str(tmp_path / "corpus")
        assert main(["corpus", "build", *corpus_sources,
                     "-o", corpus_dir, "--shards", "3",
                     "--strategy", "size"]) == 0
        out = capsys.readouterr().out
        assert "3 document(s)" in out and "3 shard(s)" in out

        assert main(["corpus", "search", corpus_dir, "k1", "k2",
                     "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 answer(s)" in out
        assert "2 pruned" in out  # the weak shards cannot beat Pr=1

        assert main(["corpus", "fsck", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("clean") == 3

    def test_search_json_reports_prunes(self, tmp_path,
                                        corpus_sources, capsys):
        import json as json_mod
        corpus_dir = str(tmp_path / "corpus")
        assert main(["corpus", "build", *corpus_sources,
                     "-o", corpus_dir, "--shards", "3",
                     "--strategy", "size"]) == 0
        capsys.readouterr()
        assert main(["corpus", "search", corpus_dir, "k1", "k2",
                     "-k", "1", "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["results"][0]["probability"] == 1.0
        assert payload["corpus"]["pruned"] == 2
        assert not payload["partial"]

    def test_corrupted_shard_quarantines_without_failing_search(
            self, tmp_path, corpus_sources, capsys):
        import os
        from repro.corpus import load_corpus_manifest
        from repro.index.storage import resolve_snapshot
        corpus_dir = str(tmp_path / "corpus")
        assert main(["corpus", "build", *corpus_sources,
                     "-o", corpus_dir, "--shards", "3",
                     "--strategy", "size"]) == 0
        manifest = load_corpus_manifest(corpus_dir)
        weak_shard = next(doc.shard for doc in manifest.documents
                          if "weak1" in doc.name)
        snapshot_dir, _ = resolve_snapshot(
            manifest.shard_dir(weak_shard))
        with open(os.path.join(snapshot_dir, "postings.jsonl"), "a",
                  encoding="utf-8") as handle:
            handle.write("{torn-final-line")
        capsys.readouterr()
        # The damaged shard fails checksum verification and degrades;
        # the healthy shards still answer (a partial outcome).
        assert main(["corpus", "search", corpus_dir, "k1", "k2",
                     "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "PARTIAL: shard_failure" in out
        assert "1. Pr=1.000000" in out
        # fsck flags the shard (exit 0: the document is recoverable)...
        assert main(["corpus", "fsck", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "--repair" in out and out.count("clean") == 2
        # ...and repair quarantines the damage and heals the corpus.
        assert main(["corpus", "fsck", corpus_dir, "--repair"]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert main(["corpus", "search", corpus_dir, "k1", "k2",
                     "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "PARTIAL" not in out
        assert "1. Pr=1.000000" in out

    def test_build_rejects_bad_strategy_count(self, tmp_path,
                                              corpus_sources, capsys):
        corpus_dir = str(tmp_path / "corpus")
        assert main(["corpus", "build", *corpus_sources,
                     "-o", corpus_dir, "--shards", "0"]) == 1
        assert "positive" in capsys.readouterr().err
