"""Unit tests for the random workload sampler."""

import random

import pytest

from repro import Database, topk_search
from repro.datagen import (WorkloadSpec, eligible_terms, generate_mondial,
                           make_probabilistic, sample_workload)
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def mondial_db():
    document = make_probabilistic(generate_mondial(), seed=673)
    return Database.from_document(document)


class TestEligibleTerms:
    def test_frequency_band_respected(self, mondial_db):
        spec = WorkloadSpec(min_frequency=5, max_frequency=50)
        for term in eligible_terms(mondial_db.index, spec):
            frequency = mondial_db.index.document_frequency(term)
            assert 5 <= frequency <= 50

    def test_unbounded_band(self, mondial_db):
        spec = WorkloadSpec(min_frequency=1, max_frequency=None)
        assert len(eligible_terms(mondial_db.index, spec)) == \
            len(mondial_db.index)


class TestSampleWorkload:
    def test_shape_and_reproducibility(self, mondial_db):
        spec = WorkloadSpec(queries=8, terms_per_query=2,
                            min_frequency=5)
        first = sample_workload(mondial_db.index, spec,
                                rng=random.Random(42))
        second = sample_workload(mondial_db.index, spec,
                                 rng=random.Random(42))
        assert first == second
        assert len(first) == 8
        assert all(len(query) == 2 for query in first)
        assert len({tuple(query) for query in first}) == 8

    def test_queries_have_answers(self, mondial_db):
        spec = WorkloadSpec(queries=6, terms_per_query=2,
                            min_frequency=10, require_answers=True)
        workload = sample_workload(mondial_db.index, spec,
                                   rng=random.Random(7))
        for query in workload:
            outcome = topk_search(mondial_db, query, 3, "prstack")
            assert len(outcome) >= 1, query

    def test_without_answer_requirement(self, mondial_db):
        spec = WorkloadSpec(queries=5, terms_per_query=3,
                            min_frequency=2, require_answers=False)
        workload = sample_workload(mondial_db.index, spec,
                                   rng=random.Random(3))
        assert len(workload) == 5

    def test_impossible_spec_rejected(self, mondial_db):
        with pytest.raises(QueryError, match="frequency band"):
            sample_workload(
                mondial_db.index,
                WorkloadSpec(queries=1, terms_per_query=2,
                             min_frequency=10 ** 9))
        with pytest.raises(QueryError):
            sample_workload(mondial_db.index, WorkloadSpec(queries=0))

    def test_exhaustion_reported(self, mondial_db):
        spec = WorkloadSpec(queries=10 ** 6, terms_per_query=2,
                            min_frequency=100)
        with pytest.raises(QueryError, match="satisfiable"):
            sample_workload(mondial_db.index, spec, max_attempts=20)
