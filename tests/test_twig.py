"""Tests for the probabilistic twig-query engine."""

import random

import pytest

from repro import Database, DocumentBuilder
from repro.exceptions import QueryError
from repro.prxml.possible_worlds import enumerate_possible_worlds
from repro.twig import (match_twig_in_world, parse_twig, topk_twig_search,
                        twig_match_probability, world_has_match)
from tests.conftest import random_pdoc


@pytest.fixture
def movie_db():
    builder = DocumentBuilder("movies")
    with builder.element("movie"):
        builder.leaf("title", text="paris texas")
        with builder.mux():
            builder.leaf("year", text="1984", prob=0.8)
            builder.leaf("year", text="1985", prob=0.2)
        with builder.ind():
            builder.leaf("actor", text="stanton", prob=0.6)
    with builder.element("movie"):
        builder.leaf("title", text="texas chainsaw")
        builder.leaf("year", text="1974")
    return Database.from_document(builder.build())


class TestParser:
    def test_single_step(self):
        pattern = parse_twig("movie")
        assert len(pattern) == 1
        assert pattern.root.label == "movie"

    def test_branches_and_axes(self):
        pattern = parse_twig('a[b/c][//d ~ "x"]/e')
        assert len(pattern) == 5
        root = pattern.root
        assert [child.label for child in root.children] == ["b", "d", "e"]
        assert root.children[0].axis == "/"
        assert root.children[1].axis == "//"
        assert root.children[1].text_term == "x"
        assert root.children[0].children[0].label == "c"

    def test_inline_and_nested_text_predicates_equivalent(self):
        inline = parse_twig('m[t ~ "x"]')
        nested = parse_twig('m[t[~ "x"]]')
        assert str(inline) == str(nested)

    def test_exact_text(self):
        pattern = parse_twig('y[= "1984"]')
        assert pattern.root.text_exact == "1984"

    def test_wildcard(self):
        pattern = parse_twig('*[~ "k1"]')
        assert pattern.root.label == "*"
        assert not pattern.root.is_wildcard  # has a text test
        assert parse_twig("*").root.is_wildcard

    def test_leading_descendant_marker_ignored(self):
        assert str(parse_twig("//a/b")) == str(parse_twig("a/b"))

    def test_syntax_errors(self):
        for bad in ("", "a[", "a]", 'a[~ "two words"]', "a//", "/",
                    'a[~ 5]'):
            with pytest.raises(QueryError):
                parse_twig(bad)

    def test_pattern_size_cap(self):
        deep = "a" + "/a" * 10
        with pytest.raises(QueryError, match="steps"):
            parse_twig(deep)

    def test_round_trippable_str(self):
        pattern = parse_twig('a[b ~ "x"]//c')
        again = parse_twig(str(pattern))
        assert str(again) == str(pattern)


class TestDeterministicMatching:
    def test_match_on_certain_world(self, movie_db):
        worlds = enumerate_possible_worlds(movie_db.document)
        pattern = parse_twig('movie[title ~ "texas"]')
        for world in worlds:
            assert world_has_match(world.root, pattern)
            assert len(match_twig_in_world(world.root, pattern)) == 2

    def test_child_vs_descendant_axis(self):
        builder = DocumentBuilder("r")
        with builder.element("a"):
            with builder.element("mid"):
                builder.leaf("b", text="deep")
        database = Database.from_document(builder.build())
        world = enumerate_possible_worlds(database.document)[0]
        assert not world_has_match(world.root, parse_twig("a/b"))
        assert world_has_match(world.root, parse_twig("a//b"))
        assert world_has_match(world.root, parse_twig("a/mid/b"))


class TestProbabilities:
    def test_mux_branch_probability(self, movie_db):
        pattern = parse_twig('movie[title ~ "texas"][year ~ "1984"]')
        outcome = topk_twig_search(movie_db.index, pattern, 5)
        assert len(outcome) == 1
        assert outcome.results[0].probability == pytest.approx(0.8)
        assert outcome.results[0].node.label == "movie"

    def test_ind_branch_probability(self, movie_db):
        outcome = topk_twig_search(movie_db.index, "movie/actor", 5)
        assert outcome.results[0].probability == pytest.approx(0.6)

    def test_certain_match(self, movie_db):
        outcome = topk_twig_search(movie_db.index,
                                   'movie[year = "1974"]', 5)
        assert outcome.results[0].probability == pytest.approx(1.0)

    def test_no_match(self, movie_db):
        outcome = topk_twig_search(movie_db.index, "movie/zebra", 5)
        assert len(outcome) == 0
        assert twig_match_probability(movie_db.index,
                                      "movie/zebra") == 0.0

    def test_match_probability_joins_bindings(self, movie_db):
        """Two certain bindings -> document-level probability 1."""
        assert twig_match_probability(
            movie_db.index, 'movie[title ~ "texas"]') == pytest.approx(1.0)

    def test_pattern_string_accepted(self, movie_db):
        by_string = topk_twig_search(movie_db.index, "movie/actor", 5)
        by_pattern = topk_twig_search(movie_db.index,
                                      parse_twig("movie/actor"), 5)
        assert by_string.probabilities() == by_pattern.probabilities()

    def test_bad_pattern_type(self, movie_db):
        with pytest.raises(QueryError):
            topk_twig_search(movie_db.index, 42, 5)


class TestAgainstOracle:
    PATTERNS = ('n[~ "k1"]', 'n[n ~ "k1"]', 'r//n[~ "k1"]',
                'n[//n ~ "k1"][/n ~ "k2"]', '*[~ "k1"]',
                'n/n//n[~ "k2"]')

    @pytest.mark.parametrize("seed", range(30))
    def test_random_documents(self, seed):
        rng = random.Random(seed * 101 + 7)
        document = random_pdoc(rng, max_nodes=14,
                               with_exp=seed % 2 == 0)
        if document.theoretical_world_count() > 30_000:
            pytest.skip("world space too large")
        database = Database.from_document(document)
        worlds = enumerate_possible_worlds(document)
        encoded = database.encoded
        for text in self.PATTERNS:
            pattern = parse_twig(text)
            expected = {}
            match_anywhere = 0.0
            for world in worlds:
                bindings = match_twig_in_world(world.root, pattern)
                if bindings:
                    match_anywhere += world.probability
                for node in bindings:
                    expected[node.source_id] = expected.get(
                        node.source_id, 0.0) + world.probability
            outcome = topk_twig_search(database.index, pattern, 1000)
            got = {encoded.node_at(result.code).node_id:
                   result.probability for result in outcome}
            assert set(got) == set(expected), (seed, text)
            for node_id, probability in expected.items():
                assert got[node_id] == pytest.approx(probability), \
                    (seed, text, node_id)
            assert twig_match_probability(database.index, pattern) == \
                pytest.approx(match_anywhere), (seed, text)


class TestLabelCaseInsensitivity:
    def test_pattern_matches_differently_cased_tags(self):
        builder = DocumentBuilder("Movies")
        with builder.element("Movie"):
            builder.leaf("Title", text="paris texas")
        database = Database.from_document(builder.build())
        for pattern in ('movie[title ~ "texas"]',
                        'MOVIE[TITLE ~ "texas"]'):
            outcome = topk_twig_search(database.index, pattern, k=5)
            assert len(outcome) == 1, pattern
            assert outcome.results[0].probability == \
                pytest.approx(1.0)
