"""Unit tests for the flight recorder ring buffer and its dumps."""

import json

import pytest

from repro.obs.recorder import (FLIGHT_SCHEMA, FlightRecorder,
                                FlightRecorderError, NULL_RECORDER,
                                load_flight_dump, render_flight_dump)


class TestRing:
    def test_records_in_order(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("event", "first", value=1)
        recorder.record("event", "second")
        records = recorder.snapshot()
        assert [r["name"] for r in records] == ["first", "second"]
        assert records[0]["seq"] == 1
        assert records[0]["value"] == 1
        assert records[0]["offset_ms"] <= records[1]["offset_ms"]

    def test_rotation_keeps_global_seq(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record("event", f"e{index}")
        assert len(recorder) == 3
        records = recorder.snapshot()
        assert [r["seq"] for r in records] == [8, 9, 10]
        assert [r["name"] for r in records] == ["e7", "e8", "e9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_dump_roundtrip(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record("resilience", "worker_crashes", value=1)
        path = recorder.dump(str(tmp_path), "worker_crash",
                             extra={"trace_id": "abc"})
        document = load_flight_dump(path)
        assert document["schema"] == FLIGHT_SCHEMA
        assert document["reason"] == "worker_crash"
        assert document["context"] == {"trace_id": "abc"}
        assert document["first_seq"] == document["last_seq"] == 1
        assert document["records"][0]["name"] == "worker_crashes"

    def test_dumps_are_ordinally_named(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        first = recorder.dump(str(tmp_path), "one")
        second = recorder.dump(str(tmp_path), "two!")
        assert first.endswith("flight-001-one.json")
        # non-alphanumerics in the reason are slugged, not escaped
        assert second.endswith("flight-002-two-.json")
        assert recorder.dumps == 2

    def test_dump_creates_directory(self, tmp_path):
        recorder = FlightRecorder()
        path = recorder.dump(str(tmp_path / "deep" / "trace"), "r")
        assert load_flight_dump(path)["records"] == []

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other/v1",
                                    "records": []}))
        with pytest.raises(FlightRecorderError, match="not a"):
            load_flight_dump(str(path))

    def test_load_rejects_malformed_records(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps(
            {"schema": FLIGHT_SCHEMA, "records": [{"seq": 1}]}))
        with pytest.raises(FlightRecorderError, match="missing"):
            load_flight_dump(str(path))


class TestRendering:
    def test_render_lists_window_and_fields(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record("resilience", "retries", value=2)
        path = recorder.dump(str(tmp_path), "r")
        lines = render_flight_dump(load_flight_dump(path))
        assert "reason: r" in lines[0]
        assert any("retries" in line and "value=2" in line
                   for line in lines)

    def test_render_limit_elides_oldest(self):
        document = {"reason": "r", "first_seq": 1, "last_seq": 5,
                    "records": [{"seq": i, "offset_ms": float(i),
                                 "kind": "event", "name": f"e{i}"}
                                for i in range(1, 6)]}
        lines = render_flight_dump(document, limit=2)
        assert "... 3 older record(s) not shown" in lines[1]
        assert "e5" in lines[-1]


class TestNullRecorder:
    def test_record_is_inert(self):
        NULL_RECORDER.record("event", "x", value=1)
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.snapshot() == []
        assert not NULL_RECORDER.enabled

    def test_dump_refuses(self, tmp_path):
        with pytest.raises(FlightRecorderError, match="nothing to dump"):
            NULL_RECORDER.dump(str(tmp_path), "r")
