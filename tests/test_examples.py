"""The example scripts must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

EXPECTED_SNIPPETS = {
    "quickstart.py": "all algorithms agree",
    "movie_integration.py": "same answers",
    "information_extraction.py": "possible-world Equation 1",
    "bibliography_search.py": "top answers for D2",
    "twig_queries.py": "keyword coverage adds the award path",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=300)
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_SNIPPETS[script] in completed.stdout


def test_every_example_is_covered():
    scripts = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert scripts == set(EXPECTED_SNIPPETS)
