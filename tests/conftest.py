"""Shared fixtures: paper-derived documents and random p-documents."""

from __future__ import annotations

import random

import pytest

from repro import DocumentBuilder, PDocument, PNode, NodeType
from repro.index.storage import Database


def build_fragment_doc() -> PDocument:
    """The worked-example fragment of the paper (Examples 2-6).

    A -> MUX1(1) -> IND2(0.25) -> C1(0.6) -> MUX2(1) with MUX2's
    children D1 (k1, 0.5), IND3 (0.1) holding D2 (k1, 0.7) and
    E1 (k2, 0.9), and E2 (k2, 0.3).  The paper computes
    Pr(path A->C1) = 0.15, the IND3 and MUX2 distribution tables of
    Examples 4-5, and Pr_slca(C1) = 0.00945 on exactly this subtree.
    """
    builder = DocumentBuilder("A")
    with builder.mux():                      # MUX1
        with builder.ind(prob=0.25):         # IND2
            with builder.element("C1", prob=0.6):
                with builder.mux():          # MUX2
                    builder.leaf("D1", text="k1", prob=0.5)
                    with builder.ind(prob=0.1):   # IND3
                        builder.leaf("D2", text="k1", prob=0.7)
                        builder.leaf("E1", text="k2", prob=0.9)
                    builder.leaf("E2", text="k2", prob=0.3)
    return builder.build()


def build_figure1_doc() -> PDocument:
    """A fuller reconstruction of Figure 1(a): the fragment above plus
    the sibling branches (IND1 with B1, B2 under IND2, and the C3/C5
    subtree with its inner MUX), exercising every promotion rule."""
    builder = DocumentBuilder("A")
    with builder.mux():                      # MUX1
        with builder.ind(prob=0.15):         # IND1
            builder.leaf("B1", text="k2", prob=0.8)
        with builder.ind(prob=0.25):         # IND2
            with builder.element("C1", prob=0.6):
                with builder.mux():          # MUX2
                    builder.leaf("D1", text="k1", prob=0.5)
                    with builder.ind(prob=0.1):   # IND3
                        builder.leaf("D2", text="k1", prob=0.7)
                        builder.leaf("E1", text="k2", prob=0.9)
                    builder.leaf("E2", text="k2", prob=0.3)
            builder.leaf("B2", text="k2", prob=0.5)
        builder.leaf("B3", text="k1", prob=0.3)
        with builder.element("C2", prob=0.3):
            builder.leaf("C4", text="k1")
            builder.leaf("B4", text="k2")
            with builder.element("C3"):
                with builder.mux():
                    builder.leaf("C6", text="k2", prob=0.5)
                    builder.leaf("B5", text="k1", prob=0.5)
                builder.leaf("C5", text="k2")
    return builder.build()


def random_pdoc(rng: random.Random, max_nodes: int = 18,
                keywords=("k1", "k2"), with_exp: bool = False
                ) -> PDocument:
    """A random small PrXML{ind,mux} document for oracle testing.

    With ``with_exp`` the generator may also emit EXP nodes (random
    explicit subset distributions), exercising the PrXML{exp} model
    extension.
    """
    text_pool = [None, "zz"]
    text_pool.extend(keywords)
    text_pool.append(" ".join(keywords))
    root = PNode("r", NodeType.ORDINARY, rng.choice(text_pool))
    nodes = [root]
    count = 1
    kinds = [NodeType.ORDINARY, NodeType.IND, NodeType.MUX]
    weights = [3, 1, 1]
    if with_exp:
        kinds.append(NodeType.EXP)
        weights.append(1)
    while count < max_nodes and nodes:
        parent = rng.choice(nodes)
        kind = rng.choices(kinds, weights=weights)[0]
        if parent.node_type is NodeType.EXP:
            # EXP children get probabilities from the subset
            # distribution assigned at the end.
            prob = 1.0
        elif parent.node_type is NodeType.MUX:
            used = sum(child.edge_prob for child in parent.children)
            if used >= 0.95:
                continue
            prob = round(rng.uniform(0.05, 1.0 - used), 2)
            if prob <= 0:
                continue
        else:
            prob = round(rng.choice([1.0, rng.uniform(0.1, 1.0)]), 2)
        text = (rng.choice(text_pool)
                if kind is NodeType.ORDINARY else None)
        label = "n" if kind is NodeType.ORDINARY else kind.name
        child = PNode(label, kind, text, prob)
        parent.add_child(child)
        nodes.append(child)
        count += 1

    def prune(node: PNode) -> bool:
        node.children = [child for child in node.children if prune(child)]
        return not node.is_distributional or bool(node.children)

    prune(root)

    # Assign random subset distributions to surviving EXP nodes; every
    # child must be covered by at least one subset.
    from repro.datagen.probabilistic import _random_subsets
    for node in root.iter_subtree():
        if node.node_type is NodeType.EXP:
            node.set_exp_subsets(_random_subsets(rng, len(node.children)))
    return PDocument(root)


@pytest.fixture
def fragment_doc() -> PDocument:
    return build_fragment_doc()


@pytest.fixture
def figure1_doc() -> PDocument:
    return build_figure1_doc()


@pytest.fixture
def fragment_db(fragment_doc) -> Database:
    return Database.from_document(fragment_doc)


@pytest.fixture
def figure1_db(figure1_doc) -> Database:
    return Database.from_document(figure1_doc)


@pytest.fixture
def pdoc_factory():
    """Factory for seeded random p-documents."""
    def build(seed: int, max_nodes: int = 18,
              keywords=("k1", "k2")) -> PDocument:
        return random_pdoc(random.Random(seed), max_nodes, keywords)
    return build
