"""Tests for the probability-aware static analysis (rules R001-R007).

Each rule gets a positive snippet (must fire), a negative snippet (must
stay quiet) and a suppressed snippet (``# repro: ignore[R00x]``).  The
report round-trip, the validator's rejection paths, the CLI exit codes
and the repo-wide zero-finding baseline are pinned down at the end.
"""

import json
import os

import pytest

from repro.analysis import (ALL_RULES, LintError, build_lint_report,
                            default_rules, lint_paths, lint_source,
                            select_rules, validate_lint_report)
from repro.analysis.linter import PARSE_ERROR_RULE
from repro.analysis.report import LintReportError
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_TREE = os.path.join(REPO_ROOT, "src", "repro")
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures")

#: Path given to lint_source so the scope-limited R004 rule applies.
CORE_PATH = "src/repro/core/snippet.py"


def rules_of(result):
    return sorted({finding.rule for finding in result.findings})


class TestR001ProbabilityEquality:
    def test_flags_float_literal_comparison(self):
        result = lint_source("ok = edge_prob == 1.0\n")
        assert rules_of(result) == ["R001"]

    def test_flags_two_probability_operands(self):
        result = lint_source("same = left_prob != right_prob\n")
        assert rules_of(result) == ["R001"]

    def test_ignores_unrelated_comparison(self):
        result = lint_source("done = count == 3\n")
        assert result.clean

    def test_ignores_probability_inequality(self):
        result = lint_source("better = probability > threshold\n")
        assert result.clean

    def test_suppressed(self):
        result = lint_source(
            "ok = edge_prob == 1.0  # repro: ignore[R001] sentinel\n")
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["R001"]


class TestR002RawTimer:
    def test_flags_time_attribute_calls(self):
        result = lint_source(
            "import time\nstart = time.perf_counter()\n")
        assert rules_of(result) == ["R002"]

    def test_flags_bare_imported_clock(self):
        result = lint_source(
            "from time import perf_counter\nstart = perf_counter()\n")
        assert rules_of(result) == ["R002"]

    def test_exempt_inside_obs(self):
        result = lint_source("import time\nnow = time.monotonic()\n",
                             path="src/repro/obs/metrics.py")
        assert result.clean

    def test_ignores_time_sleep(self):
        result = lint_source("import time\ntime.sleep(1)\n")
        assert result.clean

    def test_suppressed(self):
        result = lint_source(
            "import time\n"
            "t = time.perf_counter()  # repro: ignore[R002] calibration\n")
        assert result.clean


class TestR003UnguardedReturn:
    def test_flags_raw_probability_arithmetic(self):
        result = lint_source(
            "def join(left_prob, right_prob):\n"
            "    return left_prob * right_prob\n")
        assert rules_of(result) == ["R003"]

    def test_clamped_return_is_guarded(self):
        result = lint_source(
            "from repro.analysis.numeric import clamp01\n"
            "def join(left_prob, right_prob):\n"
            "    return clamp01(left_prob * right_prob)\n")
        assert result.clean

    def test_private_function_exempt(self):
        result = lint_source(
            "def _join(left_prob, right_prob):\n"
            "    return left_prob * right_prob\n")
        assert result.clean

    def test_non_probability_arithmetic_exempt(self):
        result = lint_source(
            "def area(width, height):\n"
            "    return width * height\n")
        assert result.clean

    def test_suppressed(self):
        result = lint_source(
            "def join(left_prob, right_prob):\n"
            "    return left_prob * right_prob"
            "  # repro: ignore[R003] diagnostic\n")
        assert result.clean


class TestR004MissingAnnotations:
    def test_flags_unannotated_core_function(self):
        result = lint_source("def score(value):\n    return value\n",
                             path=CORE_PATH)
        assert rules_of(result) == ["R004"]

    def test_annotated_function_passes(self):
        result = lint_source(
            "def score(value: float) -> float:\n    return value\n",
            path=CORE_PATH)
        assert result.clean

    def test_missing_return_annotation_flagged(self):
        result = lint_source(
            "def score(value: float):\n    return value\n",
            path=CORE_PATH)
        assert rules_of(result) == ["R004"]

    def test_self_parameter_exempt(self):
        result = lint_source(
            "class Thing:\n"
            "    def score(self, value: float) -> float:\n"
            "        return value\n",
            path=CORE_PATH)
        assert result.clean

    def test_out_of_scope_path_exempt(self):
        result = lint_source("def score(value):\n    return value\n",
                             path="src/repro/datagen/xmark.py")
        assert result.clean

    def test_suppressed(self):
        result = lint_source(
            "def score(value):  # repro: ignore[R004] duck-typed\n"
            "    return value\n",
            path=CORE_PATH)
        assert result.clean


class TestR005MutableDefault:
    def test_flags_list_default(self):
        result = lint_source("def add(items=[]):\n    return items\n")
        assert rules_of(result) == ["R005"]

    def test_flags_constructor_default(self):
        result = lint_source("def add(items=dict()):\n    return items\n")
        assert rules_of(result) == ["R005"]

    def test_none_default_passes(self):
        result = lint_source("def add(items=None):\n    return items\n")
        assert result.clean

    def test_tuple_default_passes(self):
        result = lint_source("def add(items=()):\n    return items\n")
        assert result.clean

    def test_suppressed(self):
        result = lint_source(
            "def add(items=[]):  # repro: ignore[R005] module singleton\n"
            "    return items\n")
        assert result.clean


class TestR006SwallowedException:
    def test_flags_except_pass(self):
        result = lint_source(
            "try:\n    risky()\nexcept ValueError:\n    pass\n")
        assert rules_of(result) == ["R006"]

    def test_handled_exception_passes(self):
        result = lint_source(
            "try:\n    risky()\nexcept ValueError:\n    handle()\n")
        assert result.clean

    def test_suppressed(self):
        result = lint_source(
            "try:\n    risky()\n"
            "except ValueError:  # repro: ignore[R006] best effort\n"
            "    pass\n")
        assert result.clean


class TestR007NonAtomicWrite:
    STORAGE_PATH = "src/repro/index/snippet.py"

    def test_flags_truncating_open(self):
        result = lint_source(
            "with open(path, 'w') as handle:\n"
            "    handle.write(text)\n", path=self.STORAGE_PATH)
        assert rules_of(result) == ["R007"]

    def test_flags_append_and_keyword_mode(self):
        result = lint_source(
            "handle = open(path, mode='ab')\n",
            path=self.STORAGE_PATH)
        assert rules_of(result) == ["R007"]

    def test_flags_write_text_and_os_open(self):
        result = lint_source(
            "import os\n"
            "target.write_text(data)\n"
            "fd = os.open(path, os.O_WRONLY | os.O_CREAT)\n",
            path=self.STORAGE_PATH)
        assert [f.rule for f in result.findings] == ["R007", "R007"]

    def test_flags_service_package_too(self):
        result = lint_source(
            "open(path, 'w').write(text)\n",
            path="src/repro/service/snippet.py")
        assert rules_of(result) == ["R007"]

    def test_reads_pass(self):
        result = lint_source(
            "body = open(path).read()\n"
            "more = open(path, 'rb').read()\n"
            "import os\nfd = os.open(path, os.O_RDONLY)\n",
            path=self.STORAGE_PATH)
        assert result.clean

    def test_atomic_write_helper_is_blessed(self):
        result = lint_source(
            "import os\n"
            "def _atomic_write(path, text):\n"
            "    with open(path + '.tmp', 'w') as handle:\n"
            "        handle.write(text)\n"
            "    os.replace(path + '.tmp', path)\n",
            path=self.STORAGE_PATH)
        assert result.clean

    def test_other_packages_unscoped(self):
        result = lint_source(
            "with open(path, 'w') as handle:\n"
            "    handle.write(text)\n",
            path="src/repro/datagen/snippet.py")
        assert result.clean

    def test_suppressed(self):
        result = lint_source(
            "open(path, 'w')  # repro: ignore[R007] scratch file\n",
            path=self.STORAGE_PATH)
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["R007"]


class TestFramework:
    def test_syntax_error_becomes_r000(self):
        result = lint_source("def broken(:\n")
        assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]

    def test_blanket_suppression(self):
        result = lint_source(
            "ok = edge_prob == 1.0  # repro: ignore\n")
        assert result.clean
        assert len(result.suppressed) == 1

    def test_suppression_is_rule_specific(self):
        result = lint_source(
            "ok = edge_prob == 1.0  # repro: ignore[R002]\n")
        assert rules_of(result) == ["R001"]

    def test_select_rules_unknown_id(self):
        with pytest.raises(LintError):
            select_rules(["R999"])

    def test_select_rules_subset(self):
        (rule,) = select_rules(["R005"])
        result = lint_source(
            "def add(items=[], probability=1.0):\n"
            "    return probability == 1.0\n", rules=[rule])
        assert rules_of(result) == ["R005"]

    def test_findings_are_sorted_and_rendered(self):
        result = lint_paths([FIXTURES])
        ordered = [(f.file, f.line) for f in result.findings]
        assert ordered == sorted(ordered)
        rendered = result.render_lines()
        assert any("R001" in line for line in rendered)
        assert rendered[-1].endswith("file(s) scanned")


class TestFixturesAndBaseline:
    def test_fixtures_violate_every_rule(self):
        result = lint_paths([FIXTURES])
        expected = {rule.rule_id for rule in ALL_RULES}
        assert {f.rule for f in result.findings} == expected

    def test_source_tree_is_clean(self):
        """The repo-wide zero-finding baseline (CHANGES.md records the
        27 findings this gate started from)."""
        result = lint_paths([SRC_TREE])
        assert result.findings == []
        assert result.files_scanned > 50
        assert result.suppressed, "the documented sentinels stay suppressed"


class TestReport:
    def test_round_trip(self):
        result = lint_paths([FIXTURES])
        report = build_lint_report(result, [FIXTURES], default_rules())
        assert validate_lint_report(report) is report
        parsed = json.loads(json.dumps(report))
        assert validate_lint_report(parsed) == report
        assert parsed["summary"]["total"] == len(result.findings)
        assert sum(parsed["summary"]["by_rule"].values()) \
            == parsed["summary"]["total"]

    def test_validator_rejects_bad_reports(self):
        result = lint_paths([FIXTURES])
        report = build_lint_report(result, [FIXTURES], default_rules())

        for mutate, match in [
            (lambda r: r.pop("schema"), "missing required key"),
            (lambda r: r.update(schema="repro.lint/v2"), "unknown schema"),
            (lambda r: r.update(files_scanned="2"), "integer"),
            (lambda r: r["findings"][0].pop("line"), "missing key"),
            (lambda r: r["summary"].update(total=0), "does not match"),
        ]:
            broken = json.loads(json.dumps(report))
            mutate(broken)
            with pytest.raises(LintReportError, match=match):
                validate_lint_report(broken)

    def test_validator_rejects_non_dict(self):
        with pytest.raises(LintReportError):
            validate_lint_report([])


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", SRC_TREE]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, capsys):
        assert main(["lint", FIXTURES]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "R006" in out

    def test_json_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "lint.json"
        assert main(["lint", FIXTURES, "--format", "json",
                     "-o", str(output)]) == 1
        report = validate_lint_report(json.loads(output.read_text()))
        assert report["summary"]["total"] > 0

    def test_rule_selection(self, capsys):
        assert main(["lint", FIXTURES, "--rules", "R005"]) == 1
        out = capsys.readouterr().out
        assert "R005" in out and "R001" not in out

    def test_unknown_rule_is_an_error(self, capsys):
        assert main(["lint", FIXTURES, "--rules", "R999"]) == 1
        assert "R999" in capsys.readouterr().err
