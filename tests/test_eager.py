"""Unit tests for the EagerTopK algorithm (Algorithm 2)."""

import random

import pytest

from repro import Database, eager_topk_search, prstack_search
from tests.conftest import random_pdoc


def results_key(outcome):
    return [(str(r.code), round(r.probability, 10)) for r in outcome]


class TestEagerOnPaperFixtures:
    def test_example_6_value(self, fragment_db):
        outcome = eager_topk_search(fragment_db.index, ["k1", "k2"], k=5)
        assert results_key(outcome) == [("1.M1.I1.1", 0.00945)]

    def test_matches_prstack_on_figure1(self, figure1_db):
        for keywords in (["k1", "k2"], ["k1"], ["k2"]):
            for k in (1, 2, 3, 50):
                eager = eager_topk_search(figure1_db.index, keywords, k)
                stack = prstack_search(figure1_db.index, keywords, k)
                assert results_key(eager) == results_key(stack), \
                    (keywords, k)

    def test_missing_keyword_returns_empty(self, figure1_db):
        outcome = eager_topk_search(figure1_db.index, ["k1", "zebra"], 5)
        assert len(outcome) == 0
        assert outcome.stats["seeds"] == 0

    def test_stats_populated(self, figure1_db):
        outcome = eager_topk_search(figure1_db.index, ["k1", "k2"], k=2)
        stats = outcome.stats
        assert stats["algorithm"] == "eager_topk"
        assert stats["seeds"] >= 1
        assert stats["candidates_processed"] >= stats["seeds"] - \
            stats["candidates_suspended"]
        assert stats["entries_consumed"] <= stats["match_entries"]


class TestPruningFlags:
    @pytest.mark.parametrize("path_bounds,node_bounds", [
        (True, True), (True, False), (False, True), (False, False),
    ])
    def test_flags_do_not_change_answers(self, figure1_db, path_bounds,
                                         node_bounds):
        reference = prstack_search(figure1_db.index, ["k1", "k2"], k=3)
        outcome = eager_topk_search(
            figure1_db.index, ["k1", "k2"], k=3,
            use_path_bounds=path_bounds, use_node_bounds=node_bounds)
        assert results_key(outcome) == results_key(reference)

    def test_disabled_bounds_do_more_work(self, figure1_db):
        pruned = eager_topk_search(figure1_db.index, ["k1", "k2"], k=1)
        exhaustive = eager_topk_search(
            figure1_db.index, ["k1", "k2"], k=1,
            use_path_bounds=False, use_node_bounds=False)
        assert exhaustive.stats["entries_consumed"] >= \
            pruned.stats["entries_consumed"]
        assert exhaustive.stats["candidates_pruned"] == 0
        assert exhaustive.stats["candidates_suspended"] == 0


class TestTieModes:
    def test_paper_tie_mode_probabilities_match(self, figure1_db):
        exact = eager_topk_search(figure1_db.index, ["k1", "k2"], k=3)
        paper = eager_topk_search(figure1_db.index, ["k1", "k2"], k=3,
                                  exact_ties=False)
        assert sorted(round(r.probability, 10) for r in paper) == \
            sorted(round(r.probability, 10) for r in exact)

    def test_both_modes_prune_plateaus(self):
        """On a plateau of identical answers, document-later ties lose
        the tiebreak in both modes, so neither sweeps the tail."""
        from repro import Database, DocumentBuilder
        builder = DocumentBuilder("root")
        for _ in range(40):
            with builder.element("group", prob=0.5):
                builder.leaf("a", text="k1")
                builder.leaf("b", text="k2")
        database = Database.from_document(builder.build())
        exact = eager_topk_search(database.index, ["k1", "k2"], k=5)
        paper = eager_topk_search(database.index, ["k1", "k2"], k=5,
                                  exact_ties=False)
        assert exact.probabilities() == paper.probabilities()
        for outcome in (exact, paper):
            assert outcome.stats["entries_consumed"] < \
                outcome.stats["match_entries"]
        # Exact mode returns the document-order-first ties.
        assert [str(r.code) for r in exact] == \
            ["1.1", "1.2", "1.3", "1.4", "1.5"]

    @pytest.mark.parametrize("seed", range(20))
    def test_paper_tie_mode_randomised_compatibility(self, seed):
        rng = random.Random(seed * 53 + 1)
        document = random_pdoc(rng, max_nodes=40)
        database = Database.from_document(document)
        for k in (1, 3, 10):
            exact = eager_topk_search(database.index, ["k1", "k2"], k)
            paper = eager_topk_search(database.index, ["k1", "k2"], k,
                                      exact_ties=False)
            exact_probs = [round(r.probability, 9) for r in exact]
            paper_probs = [round(r.probability, 9) for r in paper]
            assert paper_probs == exact_probs, (seed, k)
            # Codes agree strictly above the tie boundary.
            if exact_probs:
                boundary = exact_probs[-1]
                above = {str(r.code) for r in exact
                         if round(r.probability, 9) > boundary}
                assert above == {str(r.code) for r in paper
                                 if round(r.probability, 9) > boundary}


class TestEagerEqualsPrStackRandomised:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_documents(self, seed):
        rng = random.Random(seed * 31 + 5)
        document = random_pdoc(rng, max_nodes=45,
                               keywords=("k1", "k2", "k3"))
        database = Database.from_document(document)
        for keywords in (["k1", "k2"], ["k1"], ["k1", "k2", "k3"]):
            for k in (1, 3, 10):
                eager = eager_topk_search(database.index, keywords, k)
                stack = prstack_search(database.index, keywords, k)
                assert results_key(eager) == results_key(stack), \
                    (seed, keywords, k)

    def test_early_termination_skips_matches(self):
        """On a wide document with one dominant answer and k=1, eager
        terminates without consuming every match entry."""
        from repro import DocumentBuilder
        builder = DocumentBuilder("root")
        with builder.element("winner"):
            builder.leaf("hit", text="k1 k2")
        for index in range(50):
            with builder.element("filler", prob=1.0):
                with builder.ind():
                    builder.leaf("a", text="k1", prob=0.2)
                    builder.leaf("b", text="k2", prob=0.2)
        database = Database.from_document(builder.build())
        outcome = eager_topk_search(database.index, ["k1", "k2"], k=1)
        assert outcome.results[0].probability == pytest.approx(1.0)
        assert outcome.stats["entries_consumed"] < \
            outcome.stats["match_entries"]
