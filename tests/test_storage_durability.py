"""Crash-safety tests for the snapshot storage layer.

The central claim of docs/STORAGE.md: a crash at *any* point during
``save_database`` leaves the previously-current generation loadable and
bit-for-bit identical.  These tests prove it by injecting an OSError at
every write-``open`` and every ``os.replace`` the save performs, one
failure point at a time, and hashing the surviving tree after each
crash.  The legacy flat layout and the version/upgrade error texts are
pinned down at the end.
"""

import builtins
import hashlib
import json
import os
import shutil

import pytest

from repro import Database, load_database, save_database, topk_search
from repro.exceptions import StorageError
from repro.index import storage
from repro.index.storage import (CURRENT_FILE, DATA_FILES,
                                 FORMAT_VERSION, MANIFEST_FILE,
                                 current_generation, list_generations,
                                 resolve_snapshot, snapshot_path)


@pytest.fixture
def database(figure1_doc):
    return Database.from_document(figure1_doc)


def tree_digests(directory) -> dict:
    """``relative path -> sha256`` for every file under ``directory``."""
    digests = {}
    for root, _dirs, files in os.walk(directory):
        for name in files:
            path = os.path.join(root, name)
            relative = os.path.relpath(path, directory)
            with open(path, "rb") as handle:
                digests[relative] = hashlib.sha256(
                    handle.read()).hexdigest()
    return digests


def generation_digests(directory) -> dict:
    """Digests of the *committed* state: CURRENT + its snapshot files."""
    generation = current_generation(directory)
    snapshot = snapshot_path(directory, generation)
    digests = {CURRENT_FILE: tree_digests(directory).get(CURRENT_FILE)}
    for relative, digest in tree_digests(snapshot).items():
        digests[os.path.join(generation, relative)] = digest
    return digests


class _CrashAt:
    """Raise OSError on the N-th matching call, counting from 1."""

    def __init__(self, target: int):
        self.target = target
        self.calls = 0

    def strike(self) -> None:
        self.calls += 1
        if self.calls == self.target:
            raise OSError("injected crash")


def _crashing_open(crash: _CrashAt, real_open):
    def wrapper(file, mode="r", *args, **kwargs):
        if any(flag in mode for flag in "wax+"):
            crash.strike()
        return real_open(file, mode, *args, **kwargs)
    return wrapper


def _crashing_replace(crash: _CrashAt, real_replace):
    def wrapper(src, dst, **kwargs):
        crash.strike()
        return real_replace(src, dst, **kwargs)
    return wrapper


def _count_calls(monkeypatch, database, directory, patch) -> int:
    """How many patched calls one successful save performs."""
    probe = shutil.copytree(directory, str(directory) + ".probe")
    crash = _CrashAt(target=0)  # target 0 never fires
    patch(monkeypatch, crash)
    save_database(database, probe)
    monkeypatch.undo()
    shutil.rmtree(probe)
    assert crash.calls > 0
    return crash.calls


def _patch_open(monkeypatch, crash):
    monkeypatch.setattr(builtins, "open",
                        _crashing_open(crash, builtins.open))


def _patch_replace(monkeypatch, crash):
    monkeypatch.setattr(storage.os, "replace",
                        _crashing_replace(crash, os.replace))


class TestCrashMidSave:
    @pytest.mark.parametrize("patch", [_patch_open, _patch_replace],
                             ids=["open", "os.replace"])
    def test_every_failure_point_preserves_previous_generation(
            self, database, tmp_path, monkeypatch, patch):
        directory = tmp_path / "db"
        save_database(database, directory)
        committed = generation_digests(directory)
        baseline = topk_search(load_database(directory),
                               ["k1", "k2"], 5, "prstack")
        expected = [(str(r.code), r.probability) for r in baseline]
        points = _count_calls(monkeypatch, database, directory, patch)
        for target in range(1, points + 1):
            crash = _CrashAt(target)
            patch(monkeypatch, crash)
            with pytest.raises(StorageError, match="injected crash"):
                save_database(database, directory)
            monkeypatch.undo()
            assert crash.calls == target, \
                f"failure point {target} never fired"
            # The committed generation is bit-identical and loadable,
            # and still yields the same answers.
            assert generation_digests(directory) == committed, \
                f"failure point {target} disturbed the committed state"
            survivor = load_database(directory)
            results = topk_search(survivor, ["k1", "k2"], 5, "prstack")
            assert [(str(r.code), r.probability)
                    for r in results] == expected
            # No staging litter survives a failed save.
            snapshots = os.path.join(directory, storage.SNAPSHOTS_DIR)
            assert not [name for name in os.listdir(snapshots)
                        if name.startswith(storage.STAGING_PREFIX)]

    def test_crash_free_save_appends_a_generation(self, database,
                                                  tmp_path):
        directory = tmp_path / "db"
        first = save_database(database, directory)
        second = save_database(database, directory)
        assert first != second
        assert list_generations(directory) == [first, second]
        assert current_generation(directory) == second

    def test_save_failure_reports_storage_error(self, database,
                                                tmp_path, monkeypatch):
        directory = tmp_path / "db"
        crash = _CrashAt(target=1)
        _patch_replace(monkeypatch, crash)
        with pytest.raises(StorageError, match="cannot write database"):
            save_database(database, directory)


class TestManifest:
    def test_manifest_records_every_data_file(self, database, tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        data_dir, generation = resolve_snapshot(directory)
        manifest = json.load(open(os.path.join(data_dir, MANIFEST_FILE)))
        assert manifest["format"] == storage.MANIFEST_FORMAT
        assert manifest["generation"] == generation
        assert manifest["version"] == FORMAT_VERSION
        assert manifest["nodes"] == len(database.document)
        assert manifest["terms"] == len(database.index)
        for name in DATA_FILES:
            record = manifest["files"][name]
            digest, size = storage.sha256_file(
                os.path.join(data_dir, name))
            assert record == {"bytes": size, "sha256": digest}

    def test_newer_manifest_format_names_upgrade_path(self, database,
                                                      tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        data_dir, _ = resolve_snapshot(directory)
        path = os.path.join(data_dir, MANIFEST_FILE)
        manifest = json.load(open(path))
        manifest["format"] = "repro.manifest/v99"
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StorageError,
                           match=r"repro\.manifest/v99.*newer.*"
                                 r"upgrade the repro library"):
            load_database(directory)


class TestVersionErrors:
    def _tamper_version(self, directory, version):
        data_dir, _ = resolve_snapshot(directory)
        path = os.path.join(data_dir, "meta.json")
        meta = json.load(open(path))
        meta["version"] = version
        with open(path, "w") as handle:
            json.dump(meta, handle)

    def test_newer_version_names_both_versions(self, database,
                                               tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        self._tamper_version(directory, FORMAT_VERSION + 41)
        with pytest.raises(StorageError) as info:
            load_database(directory, verify=False)
        message = str(info.value)
        assert str(FORMAT_VERSION + 41) in message
        assert str(FORMAT_VERSION) in message
        assert "newer" in message

    def test_garbage_version_names_supported_version(self, database,
                                                     tmp_path):
        directory = tmp_path / "db"
        save_database(database, directory)
        self._tamper_version(directory, "ancient")
        with pytest.raises(StorageError,
                           match=f"reads version {FORMAT_VERSION}"):
            load_database(directory, verify=False)


class TestLegacyLayout:
    @pytest.fixture
    def legacy_dir(self, database, tmp_path):
        """A pre-snapshot flat directory: data files at the top level,
        no CURRENT, no manifest."""
        source = tmp_path / "modern"
        save_database(database, source)
        data_dir, _ = resolve_snapshot(source)
        legacy = tmp_path / "legacy"
        os.makedirs(legacy)
        for name in DATA_FILES:
            shutil.copy(os.path.join(data_dir, name), legacy / name)
        return legacy

    def test_loads_read_only(self, database, legacy_dir):
        loaded = load_database(legacy_dir)
        assert loaded.generation is None
        assert len(loaded.document) == len(database.document)
        assert loaded.index.vocabulary() == \
            database.index.vocabulary()

    def test_save_migrates_to_snapshot_layout(self, legacy_dir):
        loaded = load_database(legacy_dir)
        generation = save_database(loaded, legacy_dir)
        assert current_generation(legacy_dir) == generation
        migrated = load_database(legacy_dir)
        assert migrated.generation == generation
        assert migrated.index.vocabulary() == \
            loaded.index.vocabulary()

    def test_not_a_database_at_all(self, tmp_path):
        with pytest.raises(StorageError,
                           match="no CURRENT pointer and no legacy"):
            load_database(tmp_path)
