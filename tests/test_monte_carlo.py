"""Unit tests for the Monte-Carlo estimator extension."""

import random

import pytest

from repro import monte_carlo_search, topk_search
from repro.exceptions import QueryError


class TestMonteCarloSearch:
    def test_converges_to_exact_probability(self, fragment_db):
        exact = topk_search(fragment_db, ["k1", "k2"], 1, "prstack")
        outcome = monte_carlo_search(
            fragment_db.index, ["k1", "k2"], k=1, samples=20000,
            rng=random.Random(1))
        assert len(outcome) == 1
        assert str(outcome.results[0].code) == \
            str(exact.results[0].code)
        assert outcome.results[0].probability == pytest.approx(
            exact.results[0].probability, abs=0.01)

    def test_estimates_carry_standard_errors(self, figure1_db):
        outcome = monte_carlo_search(
            figure1_db.index, ["k1"], k=5, samples=500,
            rng=random.Random(7))
        estimates = outcome.stats["estimates"]
        assert len(estimates) == len(outcome.results)
        for estimate in estimates:
            assert estimate.samples == 500
            assert 0 < estimate.hits <= 500
            assert 0.0 <= estimate.standard_error < 0.5

    def test_reproducible_with_seed(self, figure1_db):
        first = monte_carlo_search(figure1_db.index, ["k1"], 5,
                                   samples=200, rng=random.Random(3))
        second = monte_carlo_search(figure1_db.index, ["k1"], 5,
                                    samples=200, rng=random.Random(3))
        assert [r.probability for r in first] == \
            [r.probability for r in second]

    def test_ranking_matches_exact_on_separated_answers(self,
                                                        figure1_db):
        exact = topk_search(figure1_db, ["k1", "k2"], 2, "prstack")
        estimated = monte_carlo_search(
            figure1_db.index, ["k1", "k2"], k=2, samples=30000,
            rng=random.Random(11))
        exact_probs = exact.probabilities()
        if len(exact_probs) >= 2 and \
                exact_probs[0] - exact_probs[1] > 0.05:
            assert str(estimated.results[0].code) == \
                str(exact.results[0].code)

    def test_invalid_parameters(self, fragment_db):
        with pytest.raises(QueryError):
            monte_carlo_search(fragment_db.index, ["k1"], k=0)
        with pytest.raises(QueryError):
            monte_carlo_search(fragment_db.index, ["k1"], k=1,
                               samples=0)

    def test_no_matches_no_answers(self, fragment_db):
        outcome = monte_carlo_search(fragment_db.index, ["zebra"], k=3,
                                     samples=50,
                                     rng=random.Random(5))
        assert len(outcome) == 0

    def test_statistical_agreement_beyond_oracle_scale(self):
        """On a document far too large for exact enumeration, the
        estimator must agree with PrStack within 5 standard errors —
        an independent check of the direct computation at scale."""
        from repro import Database, prstack_search
        from tests.conftest import random_pdoc
        document = random_pdoc(random.Random(4242), max_nodes=800,
                               keywords=("k1", "k2"), with_exp=True)
        database = Database.from_document(document)
        exact = {str(r.code): r.probability
                 for r in prstack_search(database.index,
                                         ["k1", "k2"], 1000)}
        estimated = monte_carlo_search(database.index, ["k1", "k2"],
                                       k=10, samples=4000,
                                       rng=random.Random(9))
        for estimate in estimated.stats["estimates"]:
            truth = exact.get(str(estimate.result.code), 0.0)
            slack = 5 * max(estimate.standard_error, 2e-3)
            assert abs(estimate.result.probability - truth) <= slack
