"""Unit tests for tokenisation and query normalisation."""

import pytest

from repro import NodeType, PNode
from repro.exceptions import QueryError
from repro.index.tokenizer import node_terms, normalize_query, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("United States, Graduate!") == \
            ["united", "states", "graduate"]

    def test_digits_kept(self):
        assert tokenize("year 1984") == ["year", "1984"]

    def test_empty_and_punctuation_only(self):
        assert tokenize("") == []
        assert tokenize("... --- !!!") == []

    def test_mixed_alnum_runs(self):
        assert tokenize("top-k x2, a_b") == ["top", "k", "x2", "a", "b"]


class TestNodeTerms:
    def test_tag_and_text_both_match(self):
        node = PNode("title", text="keyword Search")
        assert node_terms(node) == ["title", "keyword", "search"]

    def test_distributional_nodes_never_match(self):
        assert node_terms(PNode("IND", NodeType.IND)) == []
        assert node_terms(PNode("MUX", NodeType.MUX)) == []

    def test_tag_tokenized_too(self):
        node = PNode("open_auction")
        assert node_terms(node) == ["open", "auction"]


class TestNormalizeQuery:
    def test_multiword_keywords_flatten(self):
        assert normalize_query(["United States", "ship"]) == \
            ["united", "states", "ship"]

    def test_duplicates_removed_order_kept(self):
        assert normalize_query(["Query", "query", "xml query"]) == \
            ["query", "xml"]

    def test_empty_query(self):
        assert normalize_query([]) == []

    def test_unindexable_keyword_rejected(self):
        with pytest.raises(QueryError, match="no indexable terms"):
            normalize_query(["..."])
        with pytest.raises(QueryError, match="'---'"):
            normalize_query(["united", "---"])

    def test_non_ascii_terms_survive(self):
        assert normalize_query(["Café Müller"]) == ["café", "müller"]
